(* The runtime-invariant layer (lib/check): corrupted state must trip
   Check.require when checks are on, the disabled layer must evaluate
   nothing, and full runs — clean and faulty — must pass the per-round
   engine invariants with checks enabled.

   Every test that enables the layer restores the disabled default on
   the way out so suite order never matters.  Cases that need the layer
   on are guarded on [Check.static_enabled] so the suite also passes
   under [--profile release], where the layer is compiled out. *)

let check = Alcotest.check

let with_checks f =
  Fun.protect
    ~finally:(fun () -> Check.set_enabled false)
    (fun () ->
      Check.set_enabled true;
      f ())

(* {2 The require primitive} *)

let test_require_trips () =
  if Check.static_enabled then
    with_checks (fun () ->
        Alcotest.check_raises "false predicate raises"
          (Check.Check_failed "broken invariant") (fun () ->
            Check.require ~what:"broken invariant" (fun () -> false));
        (* A true predicate is silent. *)
        Check.require ~what:"fine" (fun () -> true))

let test_disabled_evaluates_nothing () =
  Check.set_enabled false;
  Check.reset_eval_count ();
  let side_effect = ref false in
  Check.require ~what:"never evaluated" (fun () ->
      side_effect := true;
      false);
  check Alcotest.bool "predicate not run" false !side_effect;
  check Alcotest.int "eval count stays zero" 0 (Check.eval_count ())

let test_release_compiles_out () =
  (* In dev profile static_enabled is true; in release the whole layer
     is inert even after set_enabled true.  Both facts are the
     contract, so assert whichever side this build is on. *)
  if Check.static_enabled then begin
    with_checks (fun () ->
        check Alcotest.bool "enabled after set_enabled true" true
          (Check.enabled ()))
  end
  else begin
    Check.set_enabled true;
    check Alcotest.bool "release: set_enabled is a no-op" false
      (Check.enabled ());
    Check.reset_eval_count ();
    Check.require ~what:"release: never evaluated" (fun () -> false);
    check Alcotest.int "release: zero evals" 0 (Check.eval_count ())
  end

(* {2 Domain invariants on corrupted state} *)

let test_desynced_bitset_trips () =
  if Check.static_enabled then
    with_checks (fun () ->
        let bs = Dynet.Bitset.create 16 in
        let bs = Dynet.Bitset.add 3 bs in
        let bs = Dynet.Bitset.add 7 bs in
        let bs = Dynet.Bitset.add 11 bs in
        (* Correct cache is silent... *)
        Check.bitset_cached ~what:"synced" ~cached:3 bs;
        (* ...a desynced one trips. *)
        Alcotest.check_raises "cached=2 against 3 set bits"
          (Check.Check_failed "desynced") (fun () ->
            Check.bitset_cached ~what:"desynced" ~cached:2 bs))

let test_corrupted_ledger_trips () =
  if Check.static_enabled then
    with_checks (fun () ->
        let ledger = Engine.Ledger.create () in
        Engine.Ledger.record ledger Engine.Msg_class.Token 5;
        let physical_sends = 3 in
        (* The engines cross-check Ledger.total against their own send
           counter; a ledger recording more than was sent must trip. *)
        Alcotest.check_raises "ledger total <> physical sends"
          (Check.Check_failed "ledger conservation") (fun () ->
            Check.require ~what:"ledger conservation" (fun () ->
                Int.equal (Engine.Ledger.total ledger) physical_sends)))

let test_disconnected_graph_trips () =
  if Check.static_enabled then
    with_checks (fun () ->
        let connected = Dynet.Graph_gen.path ~n:6 in
        Check.connected ~what:"path is connected" connected;
        let disconnected =
          Dynet.Graph.make ~n:6
            (Dynet.Edge_set.add
               (Dynet.Edge.make 0 1)
               (Dynet.Edge_set.singleton (Dynet.Edge.make 2 3)))
        in
        Alcotest.check_raises "two components"
          (Check.Check_failed "split graph") (fun () ->
            Check.connected ~what:"split graph" disconnected))

let test_conserved_arithmetic () =
  check Alcotest.bool "balanced books" true
    (Check.conserved ~created:10 ~consumed:6 ~dropped:3 ~in_flight:1);
  check Alcotest.bool "a lost copy" false
    (Check.conserved ~created:10 ~consumed:6 ~dropped:3 ~in_flight:0)

(* {2 Full runs under --check} *)

let run_single_source ?faults ~seed () =
  let n = 12 and k = 8 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let env =
    Gossip.Runners.Oblivious (Adversary.Oblivious.tree_rotator ~seed ~n)
  in
  let result, states = Gossip.Runners.single_source ~instance ~env ?faults () in
  (result, states)

let test_clean_run_passes_checks () =
  if Check.static_enabled then
    with_checks (fun () ->
        Check.reset_eval_count ();
        let result, states = run_single_source ~seed:42 () in
        check Alcotest.bool "completed" true
          result.Engine.Run_result.completed;
        check Alcotest.bool "all nodes complete" true
          (Array.for_all Gossip.Single_source.is_complete states);
        (* The per-round engine invariants actually ran. *)
        check Alcotest.bool "invariants were evaluated" true
          (Check.eval_count () > 0))

let test_faulty_run_passes_checks () =
  if Check.static_enabled then
    with_checks (fun () ->
        (* Loss and delay exercise the dropped and in-flight legs of
           the conservation equation; the invariants must still hold. *)
        let faults = Faults.Plan.make ~loss:0.2 ~max_delay:2 ~seed:9 () in
        let result, _ = run_single_source ~faults ~seed:43 () in
        check Alcotest.bool "reliable wrapper still completes" true
          result.Engine.Run_result.completed)

let test_disabled_run_is_untouched () =
  Check.set_enabled false;
  Check.reset_eval_count ();
  let result, _ = run_single_source ~seed:44 () in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  check Alcotest.int "zero predicate evaluations" 0 (Check.eval_count ())

let suite =
  [
    Alcotest.test_case "require trips on false" `Quick test_require_trips;
    Alcotest.test_case "disabled evaluates nothing" `Quick
      test_disabled_evaluates_nothing;
    Alcotest.test_case "release gating" `Quick test_release_compiles_out;
    Alcotest.test_case "desynced bitset count trips" `Quick
      test_desynced_bitset_trips;
    Alcotest.test_case "corrupted ledger trips" `Quick
      test_corrupted_ledger_trips;
    Alcotest.test_case "disconnected graph trips" `Quick
      test_disconnected_graph_trips;
    Alcotest.test_case "conservation arithmetic" `Quick
      test_conserved_arithmetic;
    Alcotest.test_case "clean run under --check" `Quick
      test_clean_run_passes_checks;
    Alcotest.test_case "faulty run under --check" `Quick
      test_faulty_run_passes_checks;
    Alcotest.test_case "disabled run evaluates nothing" `Quick
      test_disabled_run_is_untouched;
  ]
