(* The span profiler, its exporters, the Prometheus exposition
   writer, the perf-baseline compare, and the durability guarantees of
   JSONL sinks (a killed run must never leave a torn trace line). *)

let check = Alcotest.check

(* {2 Span basics} *)

let chrome_events prof =
  match Obs.Json.member "traceEvents" (Obs.Span.to_chrome_json prof) with
  | Some (Obs.Json.List evs) -> evs
  | _ -> Alcotest.fail "chrome export lacks traceEvents"

let x_events prof =
  List.filter
    (fun ev -> Obs.Json.member "ph" ev = Some (Obs.Json.String "X"))
    (chrome_events prof)

let field name ev =
  match Obs.Json.member name ev with
  | Some v -> v
  | None -> Alcotest.failf "event lacks %S" name

let str_field name ev =
  match field name ev with
  | Obs.Json.String s -> s
  | _ -> Alcotest.failf "field %S is not a string" name

let test_span_nesting () =
  let prof = Obs.Span.create () in
  Obs.Span.enter prof ~cat:"round" "round";
  Obs.Span.enter prof ~cat:"phase" "send";
  Obs.Span.leave prof;
  Obs.Span.enter prof ~cat:"phase" "receive";
  Obs.Span.leave prof;
  Obs.Span.leave prof;
  check Alcotest.int "three spans stored" 3 (Obs.Span.span_count prof);
  check Alcotest.int "none dropped" 0 (Obs.Span.dropped prof);
  let xs = x_events prof in
  check Alcotest.int "three X events" 3 (List.length xs);
  let names = List.map (str_field "name") xs in
  check
    (Alcotest.list Alcotest.string)
    "recorded in entry order" [ "round"; "send"; "receive" ] names;
  (* The nested phases appear in the folded stacks under the round. *)
  List.iter
    (fun ev ->
      match field "dur" ev with
      | Obs.Json.Float d ->
          check Alcotest.bool "closed span has dur >= 0" true (d >= 0.)
      | _ -> Alcotest.fail "dur is not a float")
    xs

let test_span_folded_paths () =
  let prof = Obs.Span.create () in
  Obs.Span.with_span prof "outer" (fun () ->
      Obs.Span.with_span prof "inner" (fun () ->
          (* Make the inner span long enough that integer-µs self time
             survives the subtraction. *)
          ignore (Sys.opaque_identity (Array.init 50_000 Fun.id));
          let t0 = Obs.Timer.now_s () in
          while Obs.Timer.now_s () -. t0 < 0.002 do
            ()
          done));
  let folded = Obs.Span.to_folded prof in
  check Alcotest.bool "inner path present" true
    (Astring.String.is_infix ~affix:"main;outer;inner " folded)

let test_span_with_span_on_raise () =
  let prof = Obs.Span.create () in
  (try
     Obs.Span.with_span prof "body" (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "span recorded despite raise" 1
    (Obs.Span.span_count prof);
  match x_events prof with
  | [ ev ] -> (
      match field "dur" ev with
      | Obs.Json.Float d -> check Alcotest.bool "closed" true (d >= 0.)
      | _ -> Alcotest.fail "dur missing")
  | _ -> Alcotest.fail "expected exactly one event"

let test_span_counters_accumulate () =
  let prof = Obs.Span.create () in
  Obs.Span.with_span prof "work" (fun () ->
      Obs.Span.add_counter prof "msgs" 3.;
      Obs.Span.add_counter prof "msgs" 4.);
  (* No open span: silently ignored. *)
  Obs.Span.add_counter prof "msgs" 100.;
  match x_events prof with
  | [ ev ] -> (
      match Obs.Json.member "msgs" (field "args" ev) with
      | Some (Obs.Json.Float v) -> check (Alcotest.float 0.) "summed" 7. v
      | _ -> Alcotest.fail "counter missing from args")
  | _ -> Alcotest.fail "expected exactly one event"

let test_span_limit_drops () =
  let prof = Obs.Span.create ~limit:2 () in
  for _ = 1 to 4 do
    Obs.Span.with_span prof "s" (fun () -> ())
  done;
  check Alcotest.int "stored at limit" 2 (Obs.Span.span_count prof);
  check Alcotest.int "excess counted" 2 (Obs.Span.dropped prof);
  match
    Obs.Json.member "otherData" (Obs.Span.to_chrome_json prof)
  with
  | Some od ->
      check Alcotest.bool "export surfaces drop count" true
        (Obs.Json.member "dropped" od = Some (Obs.Json.Int 2))
  | None -> Alcotest.fail "otherData missing"

let test_span_worker_lanes () =
  let prof = Obs.Span.create () in
  Obs.Span.with_span prof "main-work" (fun () -> ());
  let w = Obs.Span.worker prof ~tid:2 ~lane:"sweep-w1" in
  Obs.Span.with_span w "worker-work" (fun () -> ());
  check Alcotest.int "lanes counted separately before absorb" 1
    (Obs.Span.span_count prof);
  Obs.Span.absorb prof ~from:w;
  check Alcotest.int "absorbed lane counts" 2 (Obs.Span.span_count prof);
  let metas =
    List.filter
      (fun ev -> Obs.Json.member "ph" ev = Some (Obs.Json.String "M"))
      (chrome_events prof)
  in
  let lane_names =
    List.filter_map
      (fun ev ->
        match Obs.Json.member "args" ev with
        | Some args -> (
            match Obs.Json.member "name" args with
            | Some (Obs.Json.String s) -> Some s
            | _ -> None)
        | None -> None)
      metas
  in
  check
    (Alcotest.list Alcotest.string)
    "one thread_name per lane" [ "main"; "sweep-w1" ]
    (List.sort String.compare lane_names);
  let tids =
    List.sort_uniq compare
      (List.map (fun ev -> field "tid" ev) (x_events prof))
  in
  check Alcotest.int "two distinct tids" 2 (List.length tids)

let test_span_null_is_inert () =
  let prof = Obs.Span.null in
  check Alcotest.bool "is_null" true (Obs.Span.is_null prof);
  Obs.Span.enter prof "x";
  Obs.Span.add_counter prof "c" 1.;
  Obs.Span.leave prof;
  check Alcotest.int "nothing stored" 0 (Obs.Span.span_count prof);
  check Alcotest.bool "worker of null is null" true
    (Obs.Span.is_null (Obs.Span.worker prof ~tid:2 ~lane:"w"));
  check Alcotest.int "with_span passes value through" 9
    (Obs.Span.with_span prof "y" (fun () -> 9));
  check Alcotest.string "folded export empty" "" (Obs.Span.to_folded prof)

let test_span_format_of_path () =
  let fmt_name = function
    | Obs.Span.Chrome -> "chrome"
    | Obs.Span.Folded -> "folded"
  in
  let is path = fmt_name (Obs.Span.format_of_path path) in
  check Alcotest.string ".json is chrome" "chrome" (is "out/prof.json");
  check Alcotest.string ".folded is folded" "folded" (is "prof.folded");
  check Alcotest.string ".txt is folded" "folded" (is "prof.txt");
  check Alcotest.string "unknown defaults to chrome" "chrome" (is "profile")

(* {2 Engine integration: round/phase spans from a real run} *)

let test_engine_round_phase_spans () =
  let n = 10 in
  let instance = Gossip.Instance.single_source ~n ~k:12 ~source:0 in
  let schedule =
    Adversary.Schedule.stabilized ~sigma:3
      (Adversary.Oblivious.tree_rotator ~seed:5 ~n)
  in
  let prof = Obs.Span.create () in
  let result, _ =
    Gossip.Runners.single_source ~instance
      ~env:(Gossip.Runners.Oblivious schedule)
      ~prof ()
  in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  let xs = x_events prof in
  let rounds =
    List.filter (fun ev -> String.equal (str_field "cat" ev) "round") xs
  in
  check Alcotest.int "one round span per executed round"
    result.Engine.Run_result.rounds (List.length rounds);
  let phase_names =
    List.filter (fun ev -> String.equal (str_field "cat" ev) "phase") xs
    |> List.map (str_field "name")
    |> List.sort_uniq String.compare
  in
  List.iter
    (fun expected ->
      check Alcotest.bool (expected ^ " phase present") true
        (List.mem expected phase_names))
    [ "adversary"; "graph"; "send"; "receive" ];
  (* A profiled run must not disturb the simulation itself. *)
  let plain, _ =
    Gossip.Runners.single_source ~instance
      ~env:(Gossip.Runners.Oblivious schedule)
      ()
  in
  check Alcotest.int "profiling is observation-only (messages)"
    (Engine.Ledger.total plain.Engine.Run_result.ledger)
    (Engine.Ledger.total result.Engine.Run_result.ledger);
  check Alcotest.int "profiling is observation-only (rounds)"
    plain.Engine.Run_result.rounds result.Engine.Run_result.rounds

let test_sweep_map_span_lanes_and_order () =
  let points = Array.init 8 (fun i -> i) in
  let prof = Obs.Span.create () in
  let out =
    Analysis.Sweep.map_span ~jobs:2 ~prof ~name:"sweep/test"
      (fun ~prof x ->
        Obs.Span.with_span prof "inner" (fun () -> x * x))
      points
  in
  check
    (Alcotest.array Alcotest.int)
    "results in input order"
    (Array.map (fun x -> x * x) points)
    out;
  let xs = x_events prof in
  let sweep_spans =
    List.filter (fun ev -> String.equal (str_field "cat" ev) "sweep") xs
  in
  (match sweep_spans with
  | [ ev ] ->
      check Alcotest.string "sweep span named" "sweep:sweep/test"
        (str_field "name" ev);
      let args = field "args" ev in
      check Alcotest.bool "worker-0 busy counter present" true
        (Obs.Json.member "busy_s_w0" args <> None);
      check Alcotest.bool "imbalance counter present" true
        (Obs.Json.member "imbalance" args <> None)
  | _ -> Alcotest.fail "expected exactly one sweep span");
  let inner =
    List.filter (fun ev -> String.equal (str_field "name" ev) "inner") xs
  in
  check Alcotest.int "every point's inner span survived absorb" 8
    (List.length inner);
  (* And with the null profiler the same call is just map_timed. *)
  let out2 =
    Analysis.Sweep.map_span ~jobs:2 ~name:"sweep/test"
      (fun ~prof x ->
        check Alcotest.bool "null lane handed to points" true
          (Obs.Span.is_null prof);
        x + 1)
      points
  in
  check
    (Alcotest.array Alcotest.int)
    "null-prof results in input order"
    (Array.map (fun x -> x + 1) points)
    out2

(* {2 Prometheus exposition} *)

let test_expo_exposition_format () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m ~by:5 "messages total";
  Obs.Metrics.set_gauge m "centers" 3.;
  List.iter (Obs.Metrics.observe m "round/dur") [ 1.; 2.; 3.; 4. ];
  let text = Obs.Expo.to_string ~namespace:"dynspread" m in
  let has affix = Astring.String.is_infix ~affix text in
  check Alcotest.bool "counter gets _total and sanitized name" true
    (has "dynspread_messages_total_total 5");
  check Alcotest.bool "counter TYPE line" true
    (has "# TYPE dynspread_messages_total_total counter");
  check Alcotest.bool "gauge line" true (has "dynspread_centers 3");
  check Alcotest.bool "summary quantile 0.5" true
    (has "dynspread_round_dur{quantile=\"0.5\"}");
  check Alcotest.bool "summary _count" true (has "dynspread_round_dur_count 4");
  check Alcotest.bool "summary _sum" true (has "dynspread_round_dur_sum 10");
  (* Every non-comment line is "name value" with a sane metric name. *)
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if String.length line > 0 && line.[0] <> '#' then
           match String.index_opt line ' ' with
           | None -> Alcotest.failf "malformed exposition line %S" line
           | Some i ->
               String.iteri
                 (fun j c ->
                   if j < i && not
                        (c = '_' || c = ':' || c = '{' || c = '}' || c = '"'
                       || c = '=' || c = '.'
                        || (c >= 'a' && c <= 'z')
                        || (c >= 'A' && c <= 'Z')
                        || (c >= '0' && c <= '9'))
                   then Alcotest.failf "bad char %C in %S" c line)
                 line)

let test_expo_empty_registry () =
  let m = Obs.Metrics.create () in
  check Alcotest.string "empty registry exposes nothing" ""
    (Obs.Expo.to_string m)

(* {2 Metrics.merge edge cases} *)

let test_merge_empty_registries () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.merge ~into:a b;
  check (Alcotest.list Alcotest.string) "still empty" []
    (Obs.Metrics.names a);
  (* Empty source into a populated target changes nothing. *)
  Obs.Metrics.incr a "c";
  Obs.Metrics.observe a "h" 1.;
  Obs.Metrics.merge ~into:a (Obs.Metrics.create ());
  check Alcotest.int "counter untouched" 1 (Obs.Metrics.counter a "c");
  check
    (Alcotest.list (Alcotest.float 0.))
    "samples untouched" [ 1. ] (Obs.Metrics.samples a "h")

let test_merge_disjoint_names () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.incr a "only_a";
  Obs.Metrics.observe a "hist_a" 1.;
  Obs.Metrics.incr b ~by:2 "only_b";
  Obs.Metrics.set_gauge b "gauge_b" 7.;
  Obs.Metrics.observe b "hist_b" 2.;
  Obs.Metrics.merge ~into:a b;
  check Alcotest.int "a keeps its counter" 1 (Obs.Metrics.counter a "only_a");
  check Alcotest.int "b's counter appears" 2 (Obs.Metrics.counter a "only_b");
  check Alcotest.bool "b's gauge appears" true
    (Obs.Metrics.gauge a "gauge_b" = Some 7.);
  check
    (Alcotest.list Alcotest.string)
    "all names present"
    [ "gauge_b"; "hist_a"; "hist_b"; "only_a"; "only_b" ]
    (Obs.Metrics.names a)

let test_merge_histogram_append_order () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  List.iter (Obs.Metrics.observe a "h") [ 1.; 2. ];
  List.iter (Obs.Metrics.observe b "h") [ 3.; 4.; 5. ];
  Obs.Metrics.merge ~into:a b;
  check
    (Alcotest.list (Alcotest.float 0.))
    "source samples append after target's, in order" [ 1.; 2.; 3.; 4.; 5. ]
    (Obs.Metrics.samples a "h");
  (* Merging twice keeps appending — merge is not idempotent, by
     design (each worker registry is merged exactly once). *)
  Obs.Metrics.merge ~into:a b;
  check Alcotest.int "second merge appends again" 8
    (List.length (Obs.Metrics.samples a "h"))

let test_timer_record_and_observe_span () =
  let m = Obs.Metrics.create () in
  let sp = Obs.Timer.start "region" in
  let dt = Obs.Timer.record ~metrics:m sp in
  check Alcotest.bool "non-negative elapsed" true (dt >= 0.);
  (match Obs.Metrics.summary m "region" with
  | Some s -> check Alcotest.int "one sample under the span name" 1 s.count
  | None -> Alcotest.fail "record did not feed metrics");
  (try
     Obs.Timer.observe_span ~metrics:m ~name:"failing" (fun () ->
         failwith "boom")
   with Failure _ -> ());
  match Obs.Metrics.summary m "failing" with
  | Some s -> check Alcotest.int "raise still recorded" 1 s.count
  | None -> Alcotest.fail "observe_span dropped the sample on raise"

(* {2 JSONL sink durability} *)

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

let assert_all_lines_parse ~what path =
  let lines = read_lines path in
  List.iter
    (fun line ->
      match Obs.Json.of_string line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: torn/bad line %S: %s" what line e)
    lines;
  lines

let test_sink_close_drains_pending () =
  let path = Filename.temp_file "dynspread_drain" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let sink = Obs.Sink.jsonl oc in
      (* A handful of events — far below the chunk size, so nothing has
         reached the channel yet. *)
      for r = 1 to 5 do
        Obs.Sink.emit sink (Obs.Trace.Round_start { round = r })
      done;
      Obs.Sink.close sink;
      close_out oc;
      let lines = assert_all_lines_parse ~what:"close" path in
      check Alcotest.int "close drained every pending line" 5
        (List.length lines))

let test_sink_killed_mid_trace_has_no_torn_line () =
  let path = Filename.temp_file "dynspread_kill" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* kill_writer.exe streams 20k events through a jsonl sink and
         SIGKILLs itself mid-trace — no close, no flush, no at_exit.
         A subprocess, not a fork: Unix.fork is unavailable once other
         tests have spawned domains. *)
      let exe =
        Filename.concat
          (Filename.dirname Sys.executable_name)
          "kill_writer.exe"
      in
      let pid =
        Unix.create_process exe [| exe; path |] Unix.stdin Unix.stdout
          Unix.stderr
      in
      let _, status = Unix.waitpid [] pid in
      check Alcotest.bool "child was killed, not exited" true
        (status = Unix.WSIGNALED Sys.sigkill);
      let lines = assert_all_lines_parse ~what:"sigkill mid-trace" path in
      (* 20k sends are several line-aligned chunks, so a prefix must
         have reached the file even though the run never flushed. *)
      check Alcotest.bool "a chunk-aligned prefix survived" true
        (List.length lines > 1000))

(* {2 Baseline compare} *)

let summary_json ~e1 ~ns =
  Printf.sprintf
    {|{"schema":"dynspread-bench/v1","seed":42,
       "benchmarks":[{"name":"b1","ns_per_run":%s},
                     {"name":"b2","ns_per_run":null}],
       "experiments":[{"name":"sweep/e1-point","seconds":%g}]}|}
    ns e1

let parse_summary s =
  match Obs.Json.of_string s with
  | Error e -> Alcotest.failf "bad summary fixture: %s" e
  | Ok j -> (
      match Analysis.Baseline.of_json j with
      | Error e -> Alcotest.failf "summary rejected: %s" e
      | Ok t -> t)

let test_baseline_within_tolerance () =
  let baseline = parse_summary (summary_json ~e1:10. ~ns:"1000.0") in
  let current = parse_summary (summary_json ~e1:10.5 ~ns:"1040.0") in
  let c =
    Analysis.Baseline.diff ~tolerance_pct:10. ~baseline ~current ()
  in
  check Alcotest.bool "no regression inside the band" false
    (Analysis.Baseline.regressed c);
  check Alcotest.int "both comparable entries within" 2
    c.Analysis.Baseline.within;
  check Alcotest.int "null ns_per_run rows are skipped" 0
    (List.length c.Analysis.Baseline.missing)

let test_baseline_detects_regression () =
  let baseline = parse_summary (summary_json ~e1:10. ~ns:"1000.0") in
  let current = parse_summary (summary_json ~e1:15. ~ns:"1010.0") in
  let c =
    Analysis.Baseline.diff ~tolerance_pct:25. ~baseline ~current ()
  in
  check Alcotest.bool "injected +50%% regression flagged" true
    (Analysis.Baseline.regressed c);
  (match c.Analysis.Baseline.regressions with
  | [ d ] ->
      check Alcotest.string "the experiment regressed" "sweep/e1-point"
        d.Analysis.Baseline.entry_name;
      check Alcotest.bool "pct is +50" true
        (Float.abs (d.Analysis.Baseline.pct -. 50.) < 1e-9)
  | _ -> Alcotest.fail "expected exactly one regression");
  check Alcotest.bool "report renders" true
    (List.length (Analysis.Baseline.render c) >= 2)

let test_baseline_improvement_and_missing () =
  let baseline = parse_summary (summary_json ~e1:10. ~ns:"1000.0") in
  let current =
    parse_summary
      {|{"schema":"dynspread-bench/v1","seed":42,
         "benchmarks":[],
         "experiments":[{"name":"sweep/e1-point","seconds":4.0}]}|}
  in
  let c =
    Analysis.Baseline.diff ~tolerance_pct:25. ~baseline ~current ()
  in
  check Alcotest.int "faster run listed as improvement" 1
    (List.length c.Analysis.Baseline.improvements);
  (* b1 vanished from the current run: that is a failure, not a pass. *)
  check Alcotest.bool "missing baseline entry regresses" true
    (Analysis.Baseline.regressed c);
  check
    (Alcotest.list Alcotest.string)
    "missing entry named" [ "b1" ]
    (List.map snd c.Analysis.Baseline.missing)

let test_baseline_noise_floor () =
  (* A 9 ms experiment tripling is scheduler noise, not a regression —
     but only while both sides stay under the floor. *)
  let baseline = parse_summary (summary_json ~e1:0.009 ~ns:"1000.0") in
  let current = parse_summary (summary_json ~e1:0.034 ~ns:"1000.0") in
  let floor = function
    | Analysis.Baseline.Benchmark -> 0.
    | Analysis.Baseline.Experiment -> 0.05
  in
  let c =
    Analysis.Baseline.diff ~floor ~tolerance_pct:25. ~baseline ~current ()
  in
  check Alcotest.bool "sub-floor swing is not a regression" false
    (Analysis.Baseline.regressed c);
  check Alcotest.int "floored entry counts as within" 2
    c.Analysis.Baseline.within;
  (* Crossing the floor re-arms the gate: 9 ms -> 90 ms is real. *)
  let current' = parse_summary (summary_json ~e1:0.09 ~ns:"1000.0") in
  let c' =
    Analysis.Baseline.diff ~floor ~tolerance_pct:25. ~baseline
      ~current:current' ()
  in
  check Alcotest.bool "crossing the floor still regresses" true
    (Analysis.Baseline.regressed c')

let test_baseline_shard_count () =
  (* Pre-SoA summaries carry no "shards" field and were all sequential:
     they must parse as shards = 1, and an explicit count round-trips. *)
  let old = parse_summary (summary_json ~e1:10. ~ns:"1000.0") in
  check Alcotest.int "absent shards field reads as sequential" 1
    old.Analysis.Baseline.shards;
  let sharded =
    parse_summary
      {|{"schema":"dynspread-bench/v1","seed":42,"shards":4,
         "benchmarks":[],"experiments":[]}|}
  in
  check Alcotest.int "explicit shard count round-trips" 4
    sharded.Analysis.Baseline.shards

let test_baseline_rejects_other_schemas () =
  (match
     Obs.Json.of_string {|{"schema":"something-else/v9"}|}
     |> Result.get_ok |> Analysis.Baseline.of_json
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema accepted");
  match
    Obs.Json.of_string {|{"benchmarks":[]}|}
    |> Result.get_ok |> Analysis.Baseline.of_json
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "schema-less document accepted"

let suite =
  [
    ("span nesting and export", `Quick, test_span_nesting);
    ("span folded paths", `Quick, test_span_folded_paths);
    ("span closes on raise", `Quick, test_span_with_span_on_raise);
    ("span counters accumulate", `Quick, test_span_counters_accumulate);
    ("span limit drops, export says so", `Quick, test_span_limit_drops);
    ("span worker lanes absorb", `Quick, test_span_worker_lanes);
    ("null profiler is inert", `Quick, test_span_null_is_inert);
    ("profile format from path", `Quick, test_span_format_of_path);
    ("engine emits round/phase spans", `Quick,
     test_engine_round_phase_spans);
    ("sweep map_span lanes and order", `Quick,
     test_sweep_map_span_lanes_and_order);
    ("prometheus exposition format", `Quick, test_expo_exposition_format);
    ("exposition of empty registry", `Quick, test_expo_empty_registry);
    ("merge: empty registries", `Quick, test_merge_empty_registries);
    ("merge: disjoint names", `Quick, test_merge_disjoint_names);
    ("merge: histogram append order", `Quick,
     test_merge_histogram_append_order);
    ("timer record and observe_span", `Quick,
     test_timer_record_and_observe_span);
    ("sink close drains pending lines", `Quick,
     test_sink_close_drains_pending);
    ("sink killed mid-trace: no torn line", `Quick,
     test_sink_killed_mid_trace_has_no_torn_line);
    ("baseline within tolerance", `Quick, test_baseline_within_tolerance);
    ("baseline detects regression", `Quick,
     test_baseline_detects_regression);
    ("baseline improvement and missing", `Quick,
     test_baseline_improvement_and_missing);
    ("baseline noise floor", `Quick, test_baseline_noise_floor);
    ("baseline shard count", `Quick, test_baseline_shard_count);
    ("baseline rejects other schemas", `Quick,
     test_baseline_rejects_other_schemas);
  ]
