(* Tests for the scenario subsystem: the NDJSON trace codec and its
   error discipline, record -> replay round-trips across every
   oblivious family (graphs and run reports, bit for bit), the
   contact-sequence importer's documented normalizations, scenario-spec
   validation, and the spec runner's jobs-independence. *)

let check = Alcotest.check

let graphs_equal sched_a sched_b ~rounds =
  let ok = ref true in
  for r = 1 to rounds do
    if
      not
        (Dynet.Graph.same_edges
           (Adversary.Schedule.get sched_a r)
           (Adversary.Schedule.get sched_b r))
    then ok := false
  done;
  !ok

(* {2 Trace codec} *)

let test_roundtrip_families () =
  List.iter
    (fun (name, sched) ->
      let trace = Scenario.Record.of_schedule ~rounds:25 sched in
      let reparsed =
        match Scenario.Trace_io.of_string (Scenario.Trace_io.to_string trace) with
        | Ok t -> t
        | Error e -> Alcotest.failf "%s: reparse failed: %s" name e
      in
      let replayed = Scenario.Replay.schedule reparsed in
      check Alcotest.bool
        (name ^ ": replayed graphs match the original schedule")
        true
        (graphs_equal sched replayed ~rounds:25))
    (Adversary.Oblivious.all_named ~n:10 ~seed:3)

let test_roundtrip_compositions () =
  let base = Adversary.Oblivious.tree_rotator ~seed:7 ~n:9 in
  let stabilized = Adversary.Schedule.stabilized ~sigma:4 base in
  let overlaid =
    Adversary.Schedule.overlay base
      (Adversary.Oblivious.fresh_random ~seed:8 ~n:9 ~p:0.1)
  in
  List.iter
    (fun (name, sched) ->
      let trace = Scenario.Record.of_schedule ~rounds:20 sched in
      let replayed = Scenario.Replay.schedule trace in
      check Alcotest.bool (name ^ " composition round-trips") true
        (graphs_equal sched replayed ~rounds:20))
    [ ("stabilized", stabilized); ("overlay", overlaid) ]

let test_encoding_is_byte_deterministic () =
  let sched = Adversary.Oblivious.rewiring ~seed:5 ~n:8 ~extra:8 ~rate:0.3 in
  let s1 =
    Scenario.Trace_io.to_string (Scenario.Record.of_schedule ~rounds:15 sched)
  in
  let sched' = Adversary.Oblivious.rewiring ~seed:5 ~n:8 ~extra:8 ~rate:0.3 in
  let s2 =
    Scenario.Trace_io.to_string (Scenario.Record.of_schedule ~rounds:15 sched')
  in
  check Alcotest.string "same schedule, same bytes" s1 s2;
  (* parse -> re-encode is the identity on the bytes too *)
  match Scenario.Trace_io.of_string s1 with
  | Ok t -> check Alcotest.string "reparse re-encodes identically" s1
              (Scenario.Trace_io.to_string t)
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_codec_errors () =
  let fails ?(msg_has = "") s =
    match Scenario.Trace_io.of_string s with
    | Ok _ -> Alcotest.failf "accepted bad trace: %s" s
    | Error e ->
        if msg_has <> "" && not (Astring.String.is_infix ~affix:msg_has e)
        then Alcotest.failf "error %S does not mention %S" e msg_has
  in
  let header = {|{"schema":"dynspread-trace/v1","n":4,"provenance":"t"}|} in
  fails ~msg_has:"line 1" {|{"schema":"other/v9","n":4,"provenance":"t"}|};
  fails ~msg_has:"line 1" {|{"n":4,"provenance":"t"}|};
  fails ~msg_has:"line 2"
    (header ^ "\n" ^ {|{"round":2,"add":[],"del":[]}|});
  (* non-contiguous rounds *)
  fails ~msg_has:"line 3"
    (header ^ "\n" ^ {|{"round":1,"add":[[0,1]],"del":[]}|} ^ "\n"
     ^ {|{"round":3,"add":[],"del":[]}|});
  fails (header ^ "\n" ^ {|{"round":1,"add":[[0]],"del":[]}|});
  fails (header ^ "\n" ^ {|{"round":1,"add":"x","del":[]}|});
  fails "";
  fails "not json at all"

let test_validate_catches_semantic_breaks () =
  let header = {|{"schema":"dynspread-trace/v1","n":4,"provenance":"t"}|} in
  let parse s =
    match Scenario.Trace_io.of_string s with
    | Ok t -> t
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  let invalid s =
    match Scenario.Trace_io.validate (parse s) with
    | Ok _ -> Alcotest.failf "validate accepted: %s" s
    | Error _ -> ()
  in
  (* add of an already-present edge *)
  invalid
    (header ^ "\n" ^ {|{"round":1,"add":[[0,1],[1,2],[2,3]],"del":[]}|}
     ^ "\n" ^ {|{"round":2,"add":[[0,1]],"del":[]}|});
  (* del of an absent edge *)
  invalid
    (header ^ "\n" ^ {|{"round":1,"add":[[0,1],[1,2],[2,3]],"del":[[0,3]]}|});
  (* endpoint out of range *)
  invalid (header ^ "\n" ^ {|{"round":1,"add":[[0,9]],"del":[]}|});
  (* self-loop *)
  invalid (header ^ "\n" ^ {|{"round":1,"add":[[2,2]],"del":[]}|});
  (* non-canonical pair order *)
  invalid (header ^ "\n" ^ {|{"round":1,"add":[[1,0]],"del":[]}|});
  (* a good trace validates, with the right stats *)
  let good =
    parse
      (header ^ "\n" ^ {|{"round":1,"add":[[0,1],[1,2],[2,3]],"del":[]}|}
       ^ "\n" ^ {|{"round":2,"add":[],"del":[[1,2]]}|})
  in
  match Scenario.Trace_io.validate good with
  | Error e -> Alcotest.failf "good trace rejected: %s" e
  | Ok st ->
      check Alcotest.int "TC is the summed adds" 3
        st.Scenario.Trace_io.stat_tc;
      check Alcotest.int "max edges" 3 st.Scenario.Trace_io.stat_max_edges;
      check Alcotest.bool "round 2 is disconnected" true
        (st.Scenario.Trace_io.first_disconnected = Some 2)

let test_replay_past_end () =
  let sched = Adversary.Oblivious.tree_rotator ~seed:2 ~n:6 in
  let trace = Scenario.Record.of_schedule ~rounds:5 sched in
  let hold = Scenario.Replay.schedule ~past_end:Scenario.Replay.Hold trace in
  check Alcotest.bool "Hold repeats the last graph" true
    (Dynet.Graph.same_edges
       (Adversary.Schedule.get hold 9)
       (Adversary.Schedule.get hold 5));
  let loop = Scenario.Replay.schedule ~past_end:Scenario.Replay.Loop trace in
  check Alcotest.bool "Loop wraps to round 1" true
    (Dynet.Graph.same_edges
       (Adversary.Schedule.get loop 6)
       (Adversary.Schedule.get loop 1));
  check Alcotest.bool "Loop wraps a whole period" true
    (Dynet.Graph.same_edges
       (Adversary.Schedule.get loop 12)
       (Adversary.Schedule.get loop 2));
  let fail = Scenario.Replay.schedule ~past_end:Scenario.Replay.Fail trace in
  check Alcotest.bool "Fail raises the typed past-end error" true
    (match Adversary.Schedule.get fail 6 with
    | exception Engine.Engine_error.Schedule_exhausted
        { round = 6; available = 5 } ->
        true
    | _ -> false);
  check Alcotest.bool "Fail serves recorded rounds normally" true
    (Dynet.Graph.same_edges
       (Adversary.Schedule.get fail 5)
       (Adversary.Schedule.get hold 5))

(* {2 The engine recorder hook} *)

let test_on_graph_records_realized_schedule () =
  let n = 8 in
  let sched = Adversary.Oblivious.rewiring ~seed:4 ~n ~extra:n ~rate:0.3 in
  let recorder = Scenario.Record.create ~n () in
  let instance = Gossip.Instance.single_source ~n ~k:6 ~source:0 in
  let result, _ =
    Gossip.Runners.single_source ~instance
      ~env:(Gossip.Runners.Oblivious sched)
      ~on_graph:(Scenario.Record.hook recorder)
      ()
  in
  let rounds = Scenario.Record.recorded_rounds recorder in
  check Alcotest.int "one observation per executed round"
    result.Engine.Run_result.rounds rounds;
  let replayed = Scenario.Replay.schedule (Scenario.Record.to_trace recorder) in
  check Alcotest.bool "recorded rounds replay the committed schedule" true
    (graphs_equal sched replayed ~rounds)

(* {2 Record -> replay report identity (the golden guarantee)} *)

let spec_of_json_exn s =
  match Scenario.Spec.of_string s with
  | Ok spec -> spec
  | Error errs -> Alcotest.failf "spec rejected: %s" (String.concat "; " errs)

let reports_json reports =
  Array.to_list reports
  |> List.map (fun r -> Obs.Json.to_string (Obs.Report.to_json r))

let test_record_replay_report_identity () =
  (* Same name/algorithm/instance/seed; only the env representation
     differs: the builtin family vs its recording.  Reports must be
     byte-identical. *)
  let builtin =
    spec_of_json_exn
      {|{ "schema": "dynspread-scenario/v1", "name": "golden",
          "algorithm": "multi-source",
          "env": { "family": "rewiring", "rate": 0.25 },
          "n": 10, "k": 12, "s": 3, "seed": 21, "repeats": 2 }|}
  in
  let schedule =
    match
      Scenario.Runner.builtin_schedule ~env:builtin.Scenario.Spec.env
        ~sigma:builtin.Scenario.Spec.sigma ~n:10
        ~seed:builtin.Scenario.Spec.seed
    with
    | Some s -> s
    | None -> Alcotest.fail "rewiring is a committed family"
  in
  (* repeats > 1 shift the seed, so record each repeat's schedule; the
     golden path exercises repeat 0 through a file and checks that the
     repeat-1 reports differ (the seed is in the name). *)
  let trace = Scenario.Record.of_schedule ~rounds:600 schedule in
  let path = Filename.temp_file "dynspread_golden" ".trace.jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Scenario.Trace_io.save path trace with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save failed: %s" e);
      let replay =
        spec_of_json_exn
          (Printf.sprintf
             {|{ "schema": "dynspread-scenario/v1", "name": "golden",
                 "algorithm": "multi-source",
                 "env": { "family": "trace", "path": %S },
                 "n": 10, "k": 12, "s": 3, "seed": 21 }|}
             path)
      in
      let original =
        match Scenario.Runner.run { builtin with repeats = 1 } with
        | Ok r -> reports_json r
        | Error e -> Alcotest.failf "builtin run failed: %s" e
      in
      let replayed =
        match Scenario.Runner.run replay with
        | Ok r -> reports_json r
        | Error e -> Alcotest.failf "replay run failed: %s" e
      in
      check Alcotest.(list string)
        "replayed report is byte-identical to the original" original replayed)

let test_runner_jobs_deterministic () =
  let spec =
    spec_of_json_exn
      {|{ "schema": "dynspread-scenario/v1", "name": "jobs",
          "algorithm": "single-source",
          "env": { "family": "tree-rotator" },
          "n": 9, "k": 6, "seed": 3, "repeats": 4 }|}
  in
  let run jobs =
    match Scenario.Runner.run ~jobs spec with
    | Ok r -> reports_json r
    | Error e -> Alcotest.failf "run failed: %s" e
  in
  check Alcotest.(list string) "jobs=3 matches jobs=1" (run 1) (run 3)

let test_runner_faults_and_cutter () =
  (* A faulty run and an adaptive-adversary run both produce reports
     through the same path (values are seed-dependent; we check the
     wiring: completion metadata present, names stable). *)
  let spec =
    spec_of_json_exn
      {|{ "schema": "dynspread-scenario/v1", "name": "cutter",
          "algorithm": "multi-source",
          "env": { "family": "request-cutter", "cut_prob": 0.5 },
          "n": 10, "k": 8, "s": 2, "seed": 9,
          "faults": { "loss": 0.0 } }|}
  in
  match Scenario.Runner.run spec with
  | Error e -> Alcotest.failf "cutter run failed: %s" e
  | Ok reports ->
      check Alcotest.int "one repeat, one report" 1 (Array.length reports);
      check Alcotest.string "report name carries spec/algo/seed"
        "cutter/multi-source/seed=9" reports.(0).Obs.Report.name

(* {2 Contact-sequence importer} *)

let import_exn ?bucket ?repair content =
  match Scenario.Contacts.import ?bucket ?repair content with
  | Ok r -> r
  | Error e -> Alcotest.failf "import failed: %s" e

let test_import_normalizations () =
  let csv =
    "# comment line\n\
     0,alice,bob,20\n\
     5,bob,carol\n\
     \n\
     19,alice,bob,40\n\
     21,carol,dave,20\n\
     22,dave,dave,20\n\
     80,alice,dave,20\n\
     79,bob,carol,20\n\
     81,alice,bob,20\n"
  in
  let trace, st = import_exn ~bucket:20. csv in
  check Alcotest.int "4 distinct nodes" 4 st.Scenario.Contacts.nodes;
  check Alcotest.int "self-loop dropped" 1 st.Scenario.Contacts.self_loops;
  check Alcotest.int "same-bucket duplicate collapsed" 1
    st.Scenario.Contacts.duplicates;
  check Alcotest.int "one out-of-order row" 1
    st.Scenario.Contacts.out_of_order;
  (* buckets 0, 1, 3, 4 are occupied; bucket 2 is empty and skipped *)
  check Alcotest.int "4 imported rounds" 4
    st.Scenario.Contacts.imported_rounds;
  check Alcotest.int "1 empty bucket skipped" 1
    st.Scenario.Contacts.empty_buckets;
  check Alcotest.int "trace rounds = imported rounds" 4
    (Scenario.Trace_io.rounds trace);
  check Alcotest.int "node count compacted" 4 trace.Scenario.Trace_io.header.n;
  (* repair on by default: every round connected *)
  match Scenario.Trace_io.validate trace with
  | Error e -> Alcotest.failf "imported trace invalid: %s" e
  | Ok vst ->
      check Alcotest.bool "no disconnected rounds after repair" true
        (vst.Scenario.Trace_io.first_disconnected = None)

let test_import_repair_accounting () =
  (* two disjoint pairs: disconnected, repair must add exactly 1 edge *)
  let csv = "0,a,b\n1,c,d\n" in
  let _, st = import_exn csv in
  check Alcotest.int "one repaired round" 1
    st.Scenario.Contacts.repaired_rounds;
  check Alcotest.int "one repair edge" 1 st.Scenario.Contacts.repaired_edges;
  let trace, st' = import_exn ~repair:false csv in
  check Alcotest.int "no repair when disabled" 0
    st'.Scenario.Contacts.repaired_edges;
  match Scenario.Trace_io.validate trace with
  | Error e -> Alcotest.failf "unexpected: %s" e
  | Ok vst ->
      check Alcotest.bool "unrepaired trace reports the disconnection" true
        (vst.Scenario.Trace_io.first_disconnected = Some 1)

let test_import_node_id_gaps () =
  (* numeric labels with gaps compact to dense ids in first-seen order *)
  let trace, st = import_exn "0,100,7\n0,7,4519\n1,100,4519\n" in
  check Alcotest.int "3 nodes" 3 st.Scenario.Contacts.nodes;
  check Alcotest.int "n is compacted" 3 trace.Scenario.Trace_io.header.n

let test_import_errors () =
  let fails ?(msg_has = "") content =
    match Scenario.Contacts.import content with
    | Ok _ -> Alcotest.failf "import accepted: %s" content
    | Error e ->
        if msg_has <> "" && not (Astring.String.is_infix ~affix:msg_has e)
        then Alcotest.failf "error %S does not mention %S" e msg_has
  in
  fails ~msg_has:"line 1" "0,a\n";
  fails ~msg_has:"line 2" "0,a,b\nxx,a,b\n";
  fails ~msg_has:"line 1" "0,a,b,notadur\n";
  fails ~msg_has:"line 2" "0,a,b\n1,,b\n";
  fails ~msg_has:"no usable contacts" "# only a comment\n";
  fails ~msg_has:"no usable contacts" "0,a,a\n";
  (match Scenario.Contacts.import ~bucket:0. "0,a,b\n" with
  | Ok _ -> Alcotest.fail "bucket 0 accepted"
  | Error _ -> ());
  match Scenario.Contacts.import_file "/nonexistent/contacts.csv" with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error _ -> ()

(* {2 Vendored example artifacts} *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_embedded_csv_matches_vendored_file () =
  check Alcotest.string "E17's embedded CSV is the vendored example file"
    (read_file "../examples/traces/office_contacts.csv")
    Scenario.Experiment.sample_contacts

let test_vendored_trace_matches_fresh_import () =
  let trace, _ =
    match
      Scenario.Contacts.import ~provenance:"import:office_contacts.csv"
        Scenario.Experiment.sample_contacts
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "import failed: %s" e
  in
  check Alcotest.string "office.trace.jsonl is exactly the fresh import"
    (read_file "../examples/traces/office.trace.jsonl")
    (Scenario.Trace_io.to_string trace)

let test_vendored_specs_validate () =
  List.iter
    (fun path ->
      match Scenario.Spec.load path with
      | Ok _ -> ()
      | Error errs ->
          Alcotest.failf "%s invalid: %s" path (String.concat "; " errs))
    [
      "../examples/p2p_churn.scenario.json";
      "../examples/traces/rotator.scenario.json";
      "../examples/traces/office.scenario.json";
    ]

(* {2 Spec validation} *)

let test_spec_accumulates_errors () =
  match
    Scenario.Spec.of_string
      {|{ "schema": "dynspread-scenario/v1", "name": "",
          "algorithm": "quantum", "env": { "family": "static", "p": 7 },
          "k": 0, "seed": -1, "bogus": true }|}
  with
  | Ok _ -> Alcotest.fail "bad spec accepted"
  | Error errs ->
      let mentions affix =
        List.exists (fun e -> Astring.String.is_infix ~affix e) errs
      in
      check Alcotest.bool "several errors at once" true (List.length errs >= 5);
      check Alcotest.bool "names the bad algorithm" true (mentions "quantum");
      check Alcotest.bool "names the unknown field" true (mentions "bogus");
      check Alcotest.bool "flags the bad probability" true (mentions "\"p\"");
      check Alcotest.bool "flags k" true (mentions "\"k\"");
      check Alcotest.bool "flags the seed" true (mentions "\"seed\"")

let test_spec_combo_rules () =
  let rejected s affix =
    match Scenario.Spec.of_string s with
    | Ok _ -> Alcotest.failf "accepted: %s" s
    | Error errs ->
        check Alcotest.bool
          (Printf.sprintf "rejection mentions %S" affix)
          true
          (List.exists (fun e -> Astring.String.is_infix ~affix e) errs)
  in
  rejected
    {|{ "schema": "dynspread-scenario/v1", "name": "x",
        "algorithm": "flooding",
        "env": { "family": "request-cutter" }, "n": 8, "k": 4 }|}
    "request-cutter";
  rejected
    {|{ "schema": "dynspread-scenario/v1", "name": "x",
        "algorithm": "oblivious-rw",
        "env": { "family": "tree-rotator" }, "n": 8, "k": 4,
        "faults": { "loss": 0.5 } }|}
    "fault";
  rejected
    {|{ "schema": "dynspread-scenario/v1", "name": "x",
        "algorithm": "single-source",
        "env": { "family": "tree-rotator" }, "k": 4 }|}
    "\"n\"";
  rejected
    {|{ "schema": "dynspread-scenario/v1", "name": "x",
        "algorithm": "single-source", "sigma": 3,
        "env": { "family": "request-cutter" }, "n": 8, "k": 4 }|}
    "sigma"

let test_spec_to_json_roundtrip () =
  let spec =
    spec_of_json_exn
      {|{ "schema": "dynspread-scenario/v1", "name": "rt",
          "algorithm": "oblivious-rw",
          "env": { "family": "edge-markovian", "p_up": 0.2, "p_down": 0.4 },
          "sigma": 2, "n": 12, "k": 9, "s": 3, "seed": 5, "repeats": 2,
          "max_rounds": 500 }|}
  in
  match Scenario.Spec.of_json (Scenario.Spec.to_json spec) with
  | Error errs ->
      Alcotest.failf "to_json not re-parseable: %s" (String.concat "; " errs)
  | Ok spec' ->
      check Alcotest.string "round-trips to the same JSON"
        (Obs.Json.to_string (Scenario.Spec.to_json spec))
        (Obs.Json.to_string (Scenario.Spec.to_json spec'))

(* {2 E17} *)

let test_e17_shape_check_passes () =
  let table = Scenario.Experiment.real_trace ~seed:42 () in
  let notes = String.concat "\n" [ Analysis.Table.render table ] in
  check Alcotest.bool "E17 shape check PASSes" true
    (Astring.String.is_infix ~affix:"PASS" notes
    && not (Astring.String.is_infix ~affix:"FAIL" notes));
  check Alcotest.int "three algorithms compared" 3
    (List.length (Analysis.Table.rows table))

let suite =
  [
    Alcotest.test_case "record/replay: every oblivious family" `Quick
      test_roundtrip_families;
    Alcotest.test_case "record/replay: stabilized and overlay" `Quick
      test_roundtrip_compositions;
    Alcotest.test_case "codec: byte-deterministic encoding" `Quick
      test_encoding_is_byte_deterministic;
    Alcotest.test_case "codec: parse errors carry line numbers" `Quick
      test_codec_errors;
    Alcotest.test_case "codec: validate catches semantic breaks" `Quick
      test_validate_catches_semantic_breaks;
    Alcotest.test_case "replay: Hold/Loop/Fail tails" `Quick
      test_replay_past_end;
    Alcotest.test_case "engine hook records the realized schedule" `Quick
      test_on_graph_records_realized_schedule;
    Alcotest.test_case "record -> replay report identity" `Quick
      test_record_replay_report_identity;
    Alcotest.test_case "runner: jobs-independent reports" `Quick
      test_runner_jobs_deterministic;
    Alcotest.test_case "runner: faults and request-cutter wiring" `Quick
      test_runner_faults_and_cutter;
    Alcotest.test_case "import: documented normalizations" `Quick
      test_import_normalizations;
    Alcotest.test_case "import: connectivity-repair accounting" `Quick
      test_import_repair_accounting;
    Alcotest.test_case "import: node-id gaps compact" `Quick
      test_import_node_id_gaps;
    Alcotest.test_case "import: deterministic errors" `Quick
      test_import_errors;
    Alcotest.test_case "vendored: embedded CSV = example file" `Quick
      test_embedded_csv_matches_vendored_file;
    Alcotest.test_case "vendored: trace file = fresh import" `Quick
      test_vendored_trace_matches_fresh_import;
    Alcotest.test_case "vendored: shipped specs validate" `Quick
      test_vendored_specs_validate;
    Alcotest.test_case "spec: accumulates every error" `Quick
      test_spec_accumulates_errors;
    Alcotest.test_case "spec: combination rules" `Quick test_spec_combo_rules;
    Alcotest.test_case "spec: to_json round-trip" `Quick
      test_spec_to_json_roundtrip;
    Alcotest.test_case "E17 real-trace shape check" `Quick
      test_e17_shape_check_passes;
  ]
