let () =
  Alcotest.run "dynspread"
    [
      ("dynet", Test_dynet.suite);
      ("fastpath", Test_fastpath.suite);
      ("engine", Test_engine.suite);
      ("soa", Test_soa.suite);
      ("adversary", Test_adversary.suite);
      ("gossip", Test_gossip.suite);
      ("protocols", Test_protocols.suite);
      ("random-walk", Test_rw.suite);
      ("analysis", Test_analysis.suite);
      ("coding", Test_coding.suite);
      ("conformance", Test_conformance.suite);
      ("leader-election", Test_leader.suite);
      ("weak-adversary", Test_weak.suite);
      ("obs", Test_obs.suite);
      ("profiler", Test_profiler.suite);
      ("faults", Test_faults.suite);
      ("scenario", Test_scenario.suite);
      ("fuzz", Test_fuzz.suite);
      ("serve", Test_serve.suite);
      ("lint", Test_lint.suite);
      ("check", Test_check.suite);
    ]
