(* Helper for the torn-line durability test (test_profiler.ml): stream
   a few chunks' worth of trace events through a JSONL sink, then die
   on SIGKILL mid-trace — no close, no flush, no at_exit.  The parent
   test asserts that every line that reached the file still parses. *)

let () =
  let path = Sys.argv.(1) in
  let oc = open_out path in
  let sink = Obs.Sink.jsonl oc in
  for r = 1 to 20_000 do
    Obs.Sink.emit sink
      (Obs.Trace.Send
         { round = r; src = r mod 7; dst = Some (r mod 11); cls = "token" })
  done;
  Unix.kill (Unix.getpid ()) Sys.sigkill
