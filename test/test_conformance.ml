(* Protocol-conformance tests: a "spy" adversary wraps an oblivious
   schedule and records every (src, dst, class) the engine put on the
   wire, letting us check the paper's protocol rules as observable wire
   behaviour rather than internal state:

   - Algorithm 1 serves every token as a response to a request from the
     immediately preceding round, over the surviving edge;
   - requests only flow towards nodes that previously announced
     completeness;
   - each completeness announcement crosses each ordered pair at most
     once (Single-Source) / at most s times (Multi-Source);
   - at most one request per directed edge per round. *)

let check = Alcotest.check

type spy = {
  mutable per_round : (int * Engine.Runner_unicast.traffic) list;
      (** newest first; traffic of round r is attached to r. *)
}

(* The engine hands the adversary the traffic of round r-1 when asking
   for round r's graph; stash it under r-1. *)
let spy_adversary schedule spy ~round ~prev ~states ~traffic =
  if round > 1 then spy.per_round <- (round - 1, traffic) :: spy.per_round;
  Adversary.Schedule.unicast schedule ~round ~prev ~states ~traffic

let run_single_source_with_spy ~n ~k ~seed =
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let schedule =
    Adversary.Schedule.stabilized ~sigma:3
      (Adversary.Oblivious.tree_rotator ~seed ~n)
  in
  let spy = { per_round = [] } in
  let states = Gossip.Single_source.init ~instance () in
  let result, _ =
    Engine.Runner_unicast.run Gossip.Single_source.protocol ~states
      ~adversary:(spy_adversary schedule spy)
      ~max_rounds:(8 * n * k)
      ~stop:(Gossip.Single_source.all_complete ~k)
      ()
  in
  (* The final round's traffic is never echoed back to the adversary;
     tests below only reason about rounds present in the spy. *)
  (result, List.rev spy.per_round)

let messages_of cls traffic =
  List.filter (fun (_, _, c) -> Engine.Msg_class.equal c cls) traffic

let test_tokens_answer_requests () =
  let n = 12 and k = 16 in
  let result, rounds = run_single_source_with_spy ~n ~k ~seed:3 in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  let by_round = Hashtbl.create 64 in
  List.iter (fun (r, t) -> Hashtbl.replace by_round r t) rounds;
  let checked = ref 0 in
  List.iter
    (fun (r, traffic) ->
      match Hashtbl.find_opt by_round (r - 1) with
      | None -> ()
      | Some prev_traffic ->
          let prev_requests = messages_of Engine.Msg_class.Request prev_traffic in
          List.iter
            (fun (src, dst, _) ->
              incr checked;
              Alcotest.check Alcotest.bool
                (Printf.sprintf "round %d: token %d->%d answers a request" r
                   src dst)
                true
                (List.exists
                   (fun (rsrc, rdst, _) -> rsrc = dst && rdst = src)
                   prev_requests))
            (messages_of Engine.Msg_class.Token traffic))
    rounds;
  check Alcotest.bool "saw token traffic" true (!checked > 0)

let test_requests_target_announced_nodes () =
  let n = 12 and k = 16 in
  let result, rounds = run_single_source_with_spy ~n ~k ~seed:4 in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  (* completeness_known.(dst).(src): dst has heard src announce. *)
  let heard = Array.make_matrix n n false in
  heard.(0).(0) <- true;
  List.iter
    (fun (_, traffic) ->
      (* Requests of this round may rely on announcements from strictly
         earlier rounds only (announcements of the same round arrive at
         its end), so check before integrating. *)
      List.iter
        (fun (src, dst, _) ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "request %d->%d targets an announcer" src dst)
            true
            heard.(src).(dst))
        (messages_of Engine.Msg_class.Request traffic);
      List.iter
        (fun (src, dst, _) -> heard.(dst).(src) <- true)
        (messages_of Engine.Msg_class.Completeness traffic))
    rounds

let test_announcements_once_per_pair () =
  let n = 12 and k = 16 in
  let result, rounds = run_single_source_with_spy ~n ~k ~seed:5 in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (_, traffic) ->
      List.iter
        (fun (src, dst, _) ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "announcement %d->%d is fresh" src dst)
            false
            (Hashtbl.mem seen (src, dst));
          Hashtbl.replace seen (src, dst) ())
        (messages_of Engine.Msg_class.Completeness traffic))
    rounds

let test_one_request_per_edge_per_round () =
  let n = 12 and k = 20 in
  let _, rounds = run_single_source_with_spy ~n ~k ~seed:6 in
  List.iter
    (fun (r, traffic) ->
      let requests = messages_of Engine.Msg_class.Request traffic in
      let edges = List.map (fun (src, dst, _) -> (src, dst)) requests in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "round %d: distinct request edges" r)
        true
        (List.length (List.sort_uniq compare edges) = List.length edges))
    rounds

let test_multi_source_announcement_budget_on_wire () =
  let n = 12 and k = 18 and s = 4 in
  let instance =
    Gossip.Instance.multi_source ~rng:(Dynet.Rng.make ~seed:7) ~n ~k ~s
  in
  let schedule =
    Adversary.Schedule.stabilized ~sigma:3
      (Adversary.Oblivious.tree_rotator ~seed:8 ~n)
  in
  let spy = { per_round = [] } in
  let states = Gossip.Multi_source.init ~instance () in
  let result, _ =
    Engine.Runner_unicast.run Gossip.Multi_source.protocol ~states
      ~adversary:(spy_adversary schedule spy)
      ~max_rounds:(8 * n * k)
      ~stop:(Gossip.Multi_source.all_complete ~k)
      ()
  in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  (* Per ordered pair, at most s announcements ever (one per source),
     and at most one per round. *)
  let count = Hashtbl.create 64 in
  List.iter
    (fun (r, traffic) ->
      let this_round = Hashtbl.create 16 in
      List.iter
        (fun (src, dst, _) ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "round %d: one announcement per edge" r)
            false
            (Hashtbl.mem this_round (src, dst));
          Hashtbl.replace this_round (src, dst) ();
          let c = Option.value (Hashtbl.find_opt count (src, dst)) ~default:0 in
          Hashtbl.replace count (src, dst) (c + 1))
        (messages_of Engine.Msg_class.Completeness traffic))
    (List.rev spy.per_round);
  Hashtbl.iter
    (fun (src, dst) c ->
      Alcotest.check Alcotest.bool
        (Printf.sprintf "pair %d->%d within budget" src dst)
        true (c <= s))
    count

(* {2 Lemma 3.3: at most n futile rounds}

   A round r is futile (Definition 3.3) if no token request crosses a
   contributive edge in r and no token learning occurs in rounds r+1
   and r+2.  Edge categories are reconstructed from the recorded graph
   sequence plus the observed token deliveries: an edge is new at r if
   inserted at r or r-1 (relative to its endpoint-incompleteness
   period, which we approximate by plain insertion age — a superset of
   the paper's categories, erring towards counting more rounds as
   futile, i.e. towards a stricter check); contributive if a token
   crossed it since its last insertion; idle otherwise.  Lemma 3.3
   bounds futile rounds by n until the last request. *)

let test_futile_rounds_bounded () =
  let n = 14 and k = 24 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let schedule =
    Adversary.Schedule.stabilized ~sigma:3
      (Adversary.Oblivious.tree_rotator ~seed:9 ~n)
  in
  let spy = { per_round = [] } in
  let states = Gossip.Single_source.init ~instance () in
  let result, _ =
    Engine.Runner_unicast.run Gossip.Single_source.protocol ~states
      ~adversary:(spy_adversary schedule spy)
      ~max_rounds:(8 * n * k)
      ~stop:(Gossip.Single_source.all_complete ~k)
      ()
  in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  let rounds = List.rev spy.per_round in
  let total_rounds = result.Engine.Run_result.rounds in
  (* learnings per round from the timeline (cumulative -> delta) *)
  let learned_in = Array.make (total_rounds + 3) 0 in
  let _ =
    List.fold_left
      (fun prev (r, _, cum) ->
        learned_in.(r) <- cum - prev;
        cum)
      0 result.Engine.Run_result.timeline
  in
  (* Reconstruct per-edge insertion ages and contributions. *)
  let inserted_at = Hashtbl.create 64 in
  let last_request_round = ref 0 in
  let futile = ref 0 in
  List.iter
    (fun (r, traffic) ->
      let g = Adversary.Schedule.get schedule r in
      (* age update: edges not present are forgotten *)
      let present = Dynet.Graph.edges g in
      (* rebuild insertion table against round r *)
      let fresh = Hashtbl.create 64 in
      Dynet.Edge_set.iter
        (fun e ->
          let entry =
            match Hashtbl.find_opt inserted_at e with
            | Some existing -> existing
            | None -> (r, false)
          in
          Hashtbl.replace fresh e entry)
        present;
      Hashtbl.reset inserted_at;
      Hashtbl.iter (fun e v -> Hashtbl.replace inserted_at e v) fresh;
      (* integrate this round's traffic *)
      let request_on_contributive = ref false in
      List.iter
        (fun (src, dst, cls) ->
          let e = Dynet.Edge.make src dst in
          match cls with
          | Engine.Msg_class.Request -> (
              last_request_round := max !last_request_round r;
              match Hashtbl.find_opt inserted_at e with
              | Some (born, contrib) when born < r - 1 && contrib ->
                  request_on_contributive := true
              | _ -> ())
          | Engine.Msg_class.Token -> (
              match Hashtbl.find_opt inserted_at e with
              | Some (born, _) when learned_in.(r) > 0 ->
                  Hashtbl.replace inserted_at e (born, true)
              | _ -> ())
          | Engine.Msg_class.Completeness | Engine.Msg_class.Walk
          | Engine.Msg_class.Center | Engine.Msg_class.Control ->
              ())
        traffic;
      let no_learning_soon =
        r + 2 <= total_rounds && learned_in.(r + 1) = 0 && learned_in.(r + 2) = 0
      in
      if (not !request_on_contributive) && no_learning_soon then incr futile)
    rounds;
  (* Lemma 3.3: at most n futile rounds until the last request; our
     reconstruction over-approximates, so allow 2n slack. *)
  check Alcotest.bool
    (Printf.sprintf "futile rounds %d <= 2n = %d" !futile (2 * n))
    true
    (!futile <= 2 * n)

let suite =
  [
    ("wire: tokens answer previous-round requests", `Quick,
     test_tokens_answer_requests);
    ("wire: futile rounds bounded (Lemma 3.3)", `Quick,
     test_futile_rounds_bounded);
    ("wire: requests target announced nodes", `Quick,
     test_requests_target_announced_nodes);
    ("wire: announcements once per pair", `Quick,
     test_announcements_once_per_pair);
    ("wire: one request per edge per round", `Quick,
     test_one_request_per_edge_per_round);
    ("wire: multi-source announcement budget", `Quick,
     test_multi_source_announcement_budget_on_wire);
  ]
