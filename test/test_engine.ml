(* Tests for the cost ledger, the stats helpers, and both synchronous
   runners (driven with tiny purpose-built protocols). *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* {2 Ledger} *)

let test_ledger_counts () =
  let l = Engine.Ledger.create () in
  Engine.Ledger.record l Engine.Msg_class.Token 3;
  Engine.Ledger.record l Engine.Msg_class.Request 2;
  Engine.Ledger.record l Engine.Msg_class.Token 1;
  check Alcotest.int "token count" 4 (Engine.Ledger.count l Engine.Msg_class.Token);
  check Alcotest.int "request count" 2
    (Engine.Ledger.count l Engine.Msg_class.Request);
  check Alcotest.int "total" 6 (Engine.Ledger.total l);
  check Alcotest.int "total excluding token" 2
    (Engine.Ledger.total_excluding l [ Engine.Msg_class.Token ]);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Ledger.record: negative message count") (fun () ->
      Engine.Ledger.record l Engine.Msg_class.Token (-1))

let test_ledger_graph_changes () =
  let open Dynet in
  let l = Engine.Ledger.create () in
  let g0 = Graph.empty ~n:4 in
  let g1 = Graph_gen.path ~n:4 in
  let g2 = Graph_gen.star ~n:4 in
  Engine.Ledger.note_graph_change l ~prev:g0 ~cur:g1;
  check Alcotest.int "tc after first round = edges" 3 (Engine.Ledger.tc l);
  check Alcotest.int "no removals yet" 0 (Engine.Ledger.removals l);
  Engine.Ledger.note_graph_change l ~prev:g1 ~cur:g2;
  (* path {01,12,23} -> star {01,02,03}: inserts {02,03}, removes {12,23} *)
  check Alcotest.int "tc accumulates" 5 (Engine.Ledger.tc l);
  check Alcotest.int "removals accumulate" 2 (Engine.Ledger.removals l)

let test_ledger_progress_learnings () =
  let l = Engine.Ledger.create () in
  Engine.Ledger.note_progress l 10;
  Engine.Ledger.note_progress l 14;
  Engine.Ledger.note_progress l 25;
  check Alcotest.int "learnings = last - first" 15 (Engine.Ledger.learnings l)

let test_ledger_competitive () =
  let l = Engine.Ledger.create () in
  Engine.Ledger.record l Engine.Msg_class.Token 100;
  let g0 = Dynet.Graph.empty ~n:5 and g1 = Dynet.Graph_gen.path ~n:5 in
  Engine.Ledger.note_graph_change l ~prev:g0 ~cur:g1;
  check (Alcotest.float 1e-9) "competitive cost" 96.
    (Engine.Ledger.competitive_cost l ~alpha:1.);
  check (Alcotest.float 1e-9) "alpha scales" 92.
    (Engine.Ledger.competitive_cost l ~alpha:2.);
  check (Alcotest.float 1e-9) "amortized" 25. (Engine.Ledger.amortized l ~k:4);
  check (Alcotest.float 1e-9) "amortized competitive" 24.
    (Engine.Ledger.amortized_competitive l ~alpha:1. ~k:4)

let test_ledger_merge () =
  let a = Engine.Ledger.create () and b = Engine.Ledger.create () in
  Engine.Ledger.record a Engine.Msg_class.Walk 5;
  Engine.Ledger.record b Engine.Msg_class.Token 7;
  Engine.Ledger.note_round a;
  Engine.Ledger.note_round b;
  Engine.Ledger.note_round b;
  Engine.Ledger.note_progress a 0;
  Engine.Ledger.note_progress a 3;
  Engine.Ledger.note_progress b 10;
  Engine.Ledger.note_progress b 14;
  let m = Engine.Ledger.merge a b in
  check Alcotest.int "merged total" 12 (Engine.Ledger.total m);
  check Alcotest.int "merged rounds" 3 (Engine.Ledger.rounds m);
  check Alcotest.int "merged learnings" 7 (Engine.Ledger.learnings m)

let test_ledger_merge_full_accounting () =
  (* merge must add every dimension: class counts, TC, removals, rounds,
     learnings, and per-node loads. *)
  let open Dynet in
  let a = Engine.Ledger.create () and b = Engine.Ledger.create () in
  Engine.Ledger.record a Engine.Msg_class.Token 4;
  Engine.Ledger.record a Engine.Msg_class.Request 1;
  Engine.Ledger.record b Engine.Msg_class.Token 6;
  Engine.Ledger.record b Engine.Msg_class.Walk 2;
  (* a: empty -> path(4): +3 edges.  b: path(4) -> star(4): +2, -2. *)
  Engine.Ledger.note_graph_change a ~prev:(Graph.empty ~n:4)
    ~cur:(Graph_gen.path ~n:4);
  Engine.Ledger.note_graph_change b ~prev:(Graph_gen.path ~n:4)
    ~cur:(Graph_gen.star ~n:4);
  Engine.Ledger.record_sender a 0 5;
  Engine.Ledger.record_sender b 0 1;
  Engine.Ledger.record_sender b 2 4;
  let m = Engine.Ledger.merge a b in
  check Alcotest.int "token counts add" 10
    (Engine.Ledger.count m Engine.Msg_class.Token);
  check Alcotest.int "request from a only" 1
    (Engine.Ledger.count m Engine.Msg_class.Request);
  check Alcotest.int "walk from b only" 2
    (Engine.Ledger.count m Engine.Msg_class.Walk);
  check Alcotest.int "tc adds" 5 (Engine.Ledger.tc m);
  check Alcotest.int "removals add" 2 (Engine.Ledger.removals m);
  check Alcotest.int "shared sender load adds" 6 (Engine.Ledger.sender_load m 0);
  check Alcotest.int "b-only sender kept" 4 (Engine.Ledger.sender_load m 2);
  check Alcotest.int "merged max load" 6 (Engine.Ledger.max_load m);
  check (Alcotest.float 1e-9) "merged mean load" 5. (Engine.Ledger.mean_load m);
  (* merge leaves its inputs untouched *)
  check Alcotest.int "input a untouched" 5 (Engine.Ledger.total a);
  check Alcotest.int "input b untouched" 8 (Engine.Ledger.total b)

let test_ledger_record_sender_negative () =
  let l = Engine.Ledger.create () in
  Alcotest.check_raises "negative sender load rejected"
    (Invalid_argument "Ledger.record_sender: negative message count")
    (fun () -> Engine.Ledger.record_sender l 0 (-1))

let test_ledger_load_list () =
  let l = Engine.Ledger.create () in
  check (Alcotest.list Alcotest.int) "empty ledger, empty loads" []
    (Engine.Ledger.load_list l);
  Engine.Ledger.record_sender l 1 3;
  Engine.Ledger.record_sender l 4 7;
  Engine.Ledger.record_sender l 1 2;
  check
    (Alcotest.list Alcotest.int)
    "one entry per sender, merged per node" [ 5; 7 ]
    (List.sort compare (Engine.Ledger.load_list l))

let test_ledger_copy_isolated () =
  let a = Engine.Ledger.create () in
  Engine.Ledger.record a Engine.Msg_class.Token 1;
  let b = Engine.Ledger.copy a in
  Engine.Ledger.record b Engine.Msg_class.Token 10;
  check Alcotest.int "original untouched" 1 (Engine.Ledger.total a);
  check Alcotest.int "copy advanced" 11 (Engine.Ledger.total b)

let test_ledger_sender_loads () =
  let l = Engine.Ledger.create () in
  check Alcotest.int "no load yet" 0 (Engine.Ledger.max_load l);
  check (Alcotest.float 1e-9) "no mean yet" 0. (Engine.Ledger.mean_load l);
  Engine.Ledger.record_sender l 3 5;
  Engine.Ledger.record_sender l 7 2;
  Engine.Ledger.record_sender l 3 1;
  check Alcotest.int "node 3 load" 6 (Engine.Ledger.sender_load l 3);
  check Alcotest.int "node 7 load" 2 (Engine.Ledger.sender_load l 7);
  check Alcotest.int "silent node load" 0 (Engine.Ledger.sender_load l 0);
  check Alcotest.int "max load" 6 (Engine.Ledger.max_load l);
  check (Alcotest.float 1e-9) "mean over senders" 4. (Engine.Ledger.mean_load l);
  let m = Engine.Ledger.merge l (Engine.Ledger.copy l) in
  check Alcotest.int "merged load doubles" 12 (Engine.Ledger.sender_load m 3)

(* {2 Msg_class} *)

let test_msg_class_indexing () =
  List.iter
    (fun cls ->
      check Alcotest.bool "index round-trips" true
        (Engine.Msg_class.equal cls
           (Engine.Msg_class.of_index (Engine.Msg_class.index cls))))
    Engine.Msg_class.all;
  check Alcotest.int "count" (List.length Engine.Msg_class.all)
    Engine.Msg_class.count

(* {2 Stats} *)

let test_stats_basics () =
  let xs = [ 1.; 2.; 3.; 4. ] in
  check (Alcotest.float 1e-9) "mean" 2.5 (Engine.Stats.mean xs);
  check (Alcotest.float 1e-9) "median even" 2.5 (Engine.Stats.median xs);
  check (Alcotest.float 1e-9) "median odd" 2. (Engine.Stats.median [ 1.; 2.; 7. ]);
  check (Alcotest.float 1e-9) "min" 1. (Engine.Stats.minimum xs);
  check (Alcotest.float 1e-9) "max" 4. (Engine.Stats.maximum xs);
  check (Alcotest.float 1e-6) "stddev" (sqrt 1.25) (Engine.Stats.stddev xs);
  check (Alcotest.float 1e-9) "p100 = max" 4.
    (Engine.Stats.percentile xs ~p:100.);
  check (Alcotest.float 1e-9) "p50" 2. (Engine.Stats.percentile xs ~p:50.)

let test_stats_linear_fit () =
  let a, b = Engine.Stats.linear_fit [ (0., 1.); (1., 3.); (2., 5.) ] in
  check (Alcotest.float 1e-9) "intercept" 1. a;
  check (Alcotest.float 1e-9) "slope" 2. b

let test_stats_loglog_slope () =
  (* y = 5 x^3 has log-log slope 3. *)
  let points = List.init 6 (fun i ->
      let x = float_of_int (i + 1) in
      (x, 5. *. (x ** 3.)))
  in
  check (Alcotest.float 1e-6) "slope 3" 3. (Engine.Stats.loglog_slope points)

let test_stats_percentile_edges () =
  let xs = [ 4.; 1.; 3.; 2. ] in
  check (Alcotest.float 1e-9) "p0 = min" 1. (Engine.Stats.percentile xs ~p:0.);
  check (Alcotest.float 1e-9) "p100 = max" 4.
    (Engine.Stats.percentile xs ~p:100.);
  check (Alcotest.float 1e-9) "singleton p0" 9.
    (Engine.Stats.percentile [ 9. ] ~p:0.);
  check (Alcotest.float 1e-9) "singleton p50" 9.
    (Engine.Stats.percentile [ 9. ] ~p:50.);
  check (Alcotest.float 1e-9) "singleton p100" 9.
    (Engine.Stats.percentile [ 9. ] ~p:100.)

let test_stats_empty_raises () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Stats.mean: empty list")
    (fun () -> ignore (Engine.Stats.mean []))

(* {2 A toy broadcast protocol: each node knows its id as a "token";
   everyone broadcasts everything they know, round-robin.  Progress =
   ids known.  Used to exercise the broadcast runner mechanics. *)

module Toy_bcast = struct
  type state = { known : int list; cursor : int }
  type msg = int

  let classify _ = Engine.Msg_class.Token

  let intent st ~round:_ =
    match st.known with
    | [] -> (st, None)
    | known ->
        let arr = Array.of_list known in
        let i = st.cursor mod Array.length arr in
        ({ st with cursor = st.cursor + 1 }, Some arr.(i))

  let receive st ~round:_ ~inbox =
    List.fold_left
      (fun st (_, x) ->
        if List.mem x st.known then st else { st with known = x :: st.known })
      st inbox

  let progress st = List.length st.known
  let plane = None
end

let toy_bcast_protocol =
  (module Toy_bcast : Engine.Runner_broadcast.PROTOCOL
    with type state = Toy_bcast.state
     and type msg = int)

let test_broadcast_runner_flood () =
  let n = 8 in
  let states =
    Array.init n (fun v -> { Toy_bcast.known = [ v ]; cursor = 0 })
  in
  let schedule = Adversary.Oblivious.static (Dynet.Graph_gen.cycle ~n) in
  let result, states =
    Engine.Runner_broadcast.run toy_bcast_protocol ~states
      ~adversary:(Adversary.Schedule.broadcast schedule)
      ~max_rounds:(n * n * n)
      ~stop:(fun states ->
        Array.for_all (fun st -> List.length st.Toy_bcast.known = n) states)
      ()
  in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  check Alcotest.bool "everyone knows everything" true
    (Array.for_all (fun st -> List.length st.Toy_bcast.known = n) states);
  (* one broadcast per node per round *)
  check Alcotest.int "message count = n * rounds"
    (n * result.Engine.Run_result.rounds)
    (Engine.Ledger.total result.Engine.Run_result.ledger);
  check Alcotest.int "learnings" (n * (n - 1))
    (Engine.Ledger.learnings result.Engine.Run_result.ledger)

let test_broadcast_runner_stop_before_start () =
  let states = Array.init 4 (fun v -> { Toy_bcast.known = [ v ]; cursor = 0 }) in
  let schedule = Adversary.Oblivious.static (Dynet.Graph_gen.cycle ~n:4) in
  let result, _ =
    Engine.Runner_broadcast.run toy_bcast_protocol ~states
      ~adversary:(Adversary.Schedule.broadcast schedule)
      ~max_rounds:100
      ~stop:(fun _ -> true)
      ()
  in
  check Alcotest.int "zero rounds" 0 result.Engine.Run_result.rounds;
  check Alcotest.bool "completed" true result.Engine.Run_result.completed

let test_broadcast_runner_round_cap () =
  let states = Array.init 4 (fun v -> { Toy_bcast.known = [ v ]; cursor = 0 }) in
  let schedule = Adversary.Oblivious.static (Dynet.Graph_gen.cycle ~n:4) in
  let result, _ =
    Engine.Runner_broadcast.run toy_bcast_protocol ~states
      ~adversary:(Adversary.Schedule.broadcast schedule)
      ~max_rounds:2
      ~stop:(fun _ -> false)
      ()
  in
  check Alcotest.int "capped at 2" 2 result.Engine.Run_result.rounds;
  check Alcotest.bool "not completed" false result.Engine.Run_result.completed

let test_broadcast_rejects_disconnected_adversary () =
  let states = Array.init 4 (fun v -> { Toy_bcast.known = [ v ]; cursor = 0 }) in
  let adversary ~round:_ ~prev:_ ~states:_ ~intents:_ = Dynet.Graph.empty ~n:4 in
  Alcotest.check_raises "disconnected graph rejected"
    (Engine.Engine_error.Adversary_violation "round 1: disconnected graph")
    (fun () ->
      ignore
        (Engine.Runner_broadcast.run toy_bcast_protocol ~states ~adversary
           ~max_rounds:5
           ~stop:(fun _ -> false)
           ()))

let test_broadcast_rejects_wrong_size_adversary () =
  let states = Array.init 4 (fun v -> { Toy_bcast.known = [ v ]; cursor = 0 }) in
  let adversary ~round:_ ~prev:_ ~states:_ ~intents:_ =
    Dynet.Graph_gen.cycle ~n:5
  in
  Alcotest.check_raises "wrong node count rejected"
    (Engine.Engine_error.Adversary_violation
       "round 1: graph has 5 nodes, expected 4") (fun () ->
      ignore
        (Engine.Runner_broadcast.run toy_bcast_protocol ~states ~adversary
           ~max_rounds:5
           ~stop:(fun _ -> false)
           ()))

(* {2 A toy unicast protocol: node 0 pushes its value to every neighbor
   every round; others forward once.  Exercises unicast delivery,
   neighbor validation, and traffic observation. *)

module Toy_unicast = struct
  type state = { me : int; value : int option; forwarded : bool }
  type msg = int

  let classify _ = Engine.Msg_class.Token

  let send st ~round:_ ~neighbors =
    match st.value with
    | Some v when not st.forwarded ->
        ( { st with forwarded = true },
          Array.to_list neighbors |> List.map (fun w -> (w, v)) )
    | Some _ | None -> (st, [])

  let receive st ~round:_ ~neighbors:_ ~inbox =
    match (st.value, inbox) with
    | None, (_, v) :: _ -> { st with value = Some v }
    | _ -> st

  let progress st = if st.value = None then 0 else 1
end

let toy_unicast_protocol =
  (module Toy_unicast : Engine.Runner_unicast.PROTOCOL
    with type state = Toy_unicast.state
     and type msg = int)

let toy_unicast_states n =
  Array.init n (fun v ->
      { Toy_unicast.me = v; value = (if v = 0 then Some 42 else None);
        forwarded = false })

let test_unicast_runner_push () =
  let n = 6 in
  let schedule = Adversary.Oblivious.static (Dynet.Graph_gen.path ~n) in
  let result, states =
    Engine.Runner_unicast.run toy_unicast_protocol ~states:(toy_unicast_states n)
      ~adversary:(Adversary.Schedule.unicast schedule)
      ~max_rounds:100
      ~stop:(fun states ->
        Array.for_all (fun st -> st.Toy_unicast.value <> None) states)
      ()
  in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  check Alcotest.int "rounds = path length" (n - 1)
    result.Engine.Run_result.rounds;
  check Alcotest.bool "all got value" true
    (Array.for_all (fun st -> st.Toy_unicast.value = Some 42) states);
  (* Each node forwards once to all its neighbors: total = sum of
     degrees of the first n-1 chain nodes. *)
  check Alcotest.int "unicast messages counted per neighbor" 9
    (Engine.Ledger.total result.Engine.Run_result.ledger)

let test_unicast_rejects_send_to_non_neighbor () =
  let module Bad = struct
    type state = unit
    type msg = int

    let classify _ = Engine.Msg_class.Control
    let send () ~round:_ ~neighbors:_ = ((), [ (3, 1) ])
    let receive () ~round:_ ~neighbors:_ ~inbox:_ = ()
    let progress () = 0
  end in
  let schedule = Adversary.Oblivious.static (Dynet.Graph_gen.path ~n:5) in
  Alcotest.check_raises "non-neighbor send rejected"
    (Engine.Engine_error.Protocol_violation
       "round 1: node 0 sent to non-neighbor 3") (fun () ->
      ignore
        (Engine.Runner_unicast.run
           (module Bad : Engine.Runner_unicast.PROTOCOL
             with type state = unit
              and type msg = int)
           ~states:(Array.make 5 ())
           ~adversary:(Adversary.Schedule.unicast schedule)
           ~max_rounds:3
           ~stop:(fun _ -> false)
           ()))

let test_unicast_rejects_double_token_on_edge () =
  let module Bad = struct
    type state = unit
    type msg = int

    let classify _ = Engine.Msg_class.Token

    let send () ~round:_ ~neighbors =
      if Array.length neighbors > 0 then
        ((), [ (neighbors.(0), 1); (neighbors.(0), 2) ])
      else ((), [])

    let receive () ~round:_ ~neighbors:_ ~inbox:_ = ()
    let progress () = 0
  end in
  let schedule = Adversary.Oblivious.static (Dynet.Graph_gen.path ~n:3) in
  Alcotest.check_raises "token bandwidth enforced"
    (Engine.Engine_error.Protocol_violation
       "round 1: node 0 sent two tokens to 1 in one round") (fun () ->
      ignore
        (Engine.Runner_unicast.run
           (module Bad : Engine.Runner_unicast.PROTOCOL
             with type state = unit
              and type msg = int)
           ~states:(Array.make 3 ())
           ~adversary:(Adversary.Schedule.unicast schedule)
           ~max_rounds:3
           ~stop:(fun _ -> false)
           ()))

let test_unicast_init_prev_tc () =
  (* With init_prev equal to the static round graph, TC stays 0. *)
  let n = 5 in
  let g = Dynet.Graph_gen.cycle ~n in
  let schedule = Adversary.Oblivious.static g in
  let run ?init_prev () =
    let result, _ =
      Engine.Runner_unicast.run toy_unicast_protocol
        ?init_prev ~states:(toy_unicast_states n)
        ~adversary:(Adversary.Schedule.unicast schedule)
        ~max_rounds:20
        ~stop:(fun states ->
          Array.for_all (fun st -> st.Toy_unicast.value <> None) states)
        ()
    in
    Engine.Ledger.tc result.Engine.Run_result.ledger
  in
  check Alcotest.int "fresh start pays for all edges" n (run ());
  check Alcotest.int "continued start pays nothing" 0 (run ~init_prev:g ())

let test_unicast_timeline_monotone () =
  let n = 6 in
  let schedule = Adversary.Oblivious.static (Dynet.Graph_gen.path ~n) in
  let result, _ =
    Engine.Runner_unicast.run toy_unicast_protocol ~states:(toy_unicast_states n)
      ~adversary:(Adversary.Schedule.unicast schedule)
      ~max_rounds:100
      ~stop:(fun states ->
        Array.for_all (fun st -> st.Toy_unicast.value <> None) states)
      ()
  in
  let timeline = result.Engine.Run_result.timeline in
  check Alcotest.int "one sample per round" result.Engine.Run_result.rounds
    (List.length timeline);
  let rec monotone = function
    | (r1, m1, p1) :: ((r2, m2, p2) :: _ as rest) ->
        r1 < r2 && m1 <= m2 && p1 <= p2 && monotone rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "timeline monotone" true (monotone timeline)

let test_runner_attributes_loads () =
  (* On the toy push protocol, node 0 sends to all its path neighbors
     exactly once; interior forwarders send twice (both neighbors). *)
  let n = 5 in
  let schedule = Adversary.Oblivious.static (Dynet.Graph_gen.path ~n) in
  let result, _ =
    Engine.Runner_unicast.run toy_unicast_protocol
      ~states:(toy_unicast_states n)
      ~adversary:(Adversary.Schedule.unicast schedule)
      ~max_rounds:50
      ~stop:(fun states ->
        Array.for_all (fun st -> st.Toy_unicast.value <> None) states)
      ()
  in
  let l = result.Engine.Run_result.ledger in
  check Alcotest.int "endpoint 0 sent once" 1 (Engine.Ledger.sender_load l 0);
  check Alcotest.int "interior node sent twice" 2 (Engine.Ledger.sender_load l 2);
  check Alcotest.int "last node never forwarded" 0
    (Engine.Ledger.sender_load l (n - 1));
  check Alcotest.int "loads sum to total"
    (Engine.Ledger.total l)
    (List.init n (fun v -> Engine.Ledger.sender_load l v)
    |> List.fold_left ( + ) 0)

let prop_ledger_total_is_sum =
  QCheck.Test.make ~name:"ledger: total = sum of class counts" ~count:100
    (QCheck.list_of_size
       QCheck.Gen.(int_bound 20)
       (QCheck.pair (QCheck.int_bound 5) (QCheck.int_bound 50)))
    (fun adds ->
      let l = Engine.Ledger.create () in
      List.iter
        (fun (cls, m) ->
          Engine.Ledger.record l (Engine.Msg_class.of_index cls) m)
        adds;
      Engine.Ledger.total l
      = List.fold_left
          (fun acc cls -> acc + Engine.Ledger.count l cls)
          0 Engine.Msg_class.all)

let suite =
  [
    ("ledger counts and classes", `Quick, test_ledger_counts);
    ("ledger graph-change accounting", `Quick, test_ledger_graph_changes);
    ("ledger learnings", `Quick, test_ledger_progress_learnings);
    ("ledger competitive cost", `Quick, test_ledger_competitive);
    ("ledger merge", `Quick, test_ledger_merge);
    ("ledger merge full accounting", `Quick, test_ledger_merge_full_accounting);
    ("ledger record_sender rejects negatives", `Quick,
     test_ledger_record_sender_negative);
    ("ledger load list", `Quick, test_ledger_load_list);
    ("ledger copy isolation", `Quick, test_ledger_copy_isolated);
    ("ledger sender loads", `Quick, test_ledger_sender_loads);
    ("runner attributes loads", `Quick, test_runner_attributes_loads);
    ("msg_class indexing", `Quick, test_msg_class_indexing);
    ("stats basics", `Quick, test_stats_basics);
    ("stats linear fit", `Quick, test_stats_linear_fit);
    ("stats loglog slope", `Quick, test_stats_loglog_slope);
    ("stats percentile edges", `Quick, test_stats_percentile_edges);
    ("stats empty raises", `Quick, test_stats_empty_raises);
    ("broadcast runner floods a ring", `Quick, test_broadcast_runner_flood);
    ("broadcast runner respects solved instances", `Quick,
     test_broadcast_runner_stop_before_start);
    ("broadcast runner round cap", `Quick, test_broadcast_runner_round_cap);
    ("broadcast runner rejects disconnected graphs", `Quick,
     test_broadcast_rejects_disconnected_adversary);
    ("broadcast runner rejects wrong-size graphs", `Quick,
     test_broadcast_rejects_wrong_size_adversary);
    ("unicast runner pushes along a path", `Quick, test_unicast_runner_push);
    ("unicast runner rejects non-neighbor sends", `Quick,
     test_unicast_rejects_send_to_non_neighbor);
    ("unicast runner enforces token bandwidth", `Quick,
     test_unicast_rejects_double_token_on_edge);
    ("unicast runner init_prev TC accounting", `Quick, test_unicast_init_prev_tc);
    ("unicast runner timeline", `Quick, test_unicast_timeline_monotone);
    qcheck prop_ledger_total_is_sum;
  ]
