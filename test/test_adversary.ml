(* Tests for the oblivious schedule families, the stability wrapper,
   the Section-2 lower-bound adversary, and the request cutter. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* {2 Schedule mechanics} *)

let test_schedule_memoizes () =
  let calls = ref 0 in
  let sched =
    Adversary.Schedule.of_fun ~n:4 (fun r ->
        incr calls;
        ignore r;
        Dynet.Graph_gen.cycle ~n:4)
  in
  ignore (Adversary.Schedule.get sched 3);
  ignore (Adversary.Schedule.get sched 3);
  ignore (Adversary.Schedule.get sched 1);
  check Alcotest.int "each round generated once" 3 !calls

let test_schedule_is_committed () =
  (* Re-reading any round gives the identical graph (obliviousness). *)
  let sched = Adversary.Oblivious.tree_rotator ~seed:5 ~n:10 in
  let a = Adversary.Schedule.get sched 7 in
  ignore (Adversary.Schedule.get sched 20);
  let b = Adversary.Schedule.get sched 7 in
  check Alcotest.bool "same graph object semantics" true
    (Dynet.Edge_set.equal (Dynet.Graph.edges a) (Dynet.Graph.edges b))

let test_schedule_rejects_round_zero () =
  let sched = Adversary.Oblivious.tree_rotator ~seed:5 ~n:4 in
  Alcotest.check_raises "1-based rounds"
    (Invalid_argument "Schedule.get: rounds are 1-based") (fun () ->
      ignore (Adversary.Schedule.get sched 0))

let test_schedule_iterate_order () =
  (* A Markov rule that appends one edge per round: proves rounds are
     produced in order exactly once. *)
  let sched =
    Adversary.Schedule.iterate ~n:6
      ~init:(fun () -> Dynet.Graph_gen.path ~n:6)
      (fun r prev ->
        let e = Dynet.Edge.make 0 (1 + (r mod 5)) in
        Dynet.Graph.make ~n:6 (Dynet.Edge_set.add e (Dynet.Graph.edges prev)))
  in
  let g5 = Adversary.Schedule.get sched 5 in
  check Alcotest.bool "accumulated edges" true
    (Dynet.Graph.edge_count g5 >= Dynet.Graph.edge_count
                                    (Adversary.Schedule.get sched 1))

(* {2 Oblivious families: connectivity and churn shape} *)

let rounds_to_check = 25

let test_all_families_connected () =
  List.iter
    (fun (name, sched) ->
      let seq = Adversary.Schedule.prefix sched rounds_to_check in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%s: all rounds connected" name)
        true
        (Dynet.Dyn_seq.all_connected seq))
    (Adversary.Oblivious.all_named ~n:18 ~seed:3)

let test_static_has_no_churn_after_round_one () =
  let g = Dynet.Graph_gen.cycle ~n:12 in
  let sched = Adversary.Oblivious.static g in
  let seq = Adversary.Schedule.prefix sched 10 in
  check Alcotest.int "tc = initial edges" (Dynet.Graph.edge_count g)
    (Dynet.Dyn_seq.tc seq)

let test_tree_rotator_heavy_churn () =
  let n = 16 in
  let sched = Adversary.Oblivious.tree_rotator ~seed:8 ~n in
  let seq = Adversary.Schedule.prefix sched 20 in
  (* Fresh random trees share few edges: TC should be much larger than
     a static tree's n-1. *)
  check Alcotest.bool "substantial churn" true
    (Dynet.Dyn_seq.tc seq > 5 * (n - 1))

let test_rewiring_rate_zero_is_static_after_init () =
  let sched = Adversary.Oblivious.rewiring ~seed:4 ~n:12 ~extra:6 ~rate:0. in
  let seq = Adversary.Schedule.prefix sched 10 in
  let first = Dynet.Graph.edge_count (Dynet.Dyn_seq.get seq 1) in
  check Alcotest.int "tc = first round's edges" first (Dynet.Dyn_seq.tc seq)

let test_rewiring_keeps_backbone () =
  let n = 12 in
  let sched = Adversary.Oblivious.rewiring ~seed:4 ~n ~extra:6 ~rate:0.5 in
  let seq = Adversary.Schedule.prefix sched 12 in
  check Alcotest.bool "every round has >= tree edges" true
    (List.for_all
       (fun r -> Dynet.Graph.edge_count (Dynet.Dyn_seq.get seq r) >= n - 1)
       (List.init 12 (fun i -> i + 1)))

let test_churn_bursts_period () =
  let quiet = Dynet.Graph_gen.cycle ~n:10 in
  let sched = Adversary.Oblivious.churn_bursts ~seed:2 ~n:10 ~period:4 ~quiet in
  let g3 = Adversary.Schedule.get sched 3 in
  let g4 = Adversary.Schedule.get sched 4 in
  check Alcotest.bool "quiet round matches quiet graph" true
    (Dynet.Edge_set.equal (Dynet.Graph.edges g3) (Dynet.Graph.edges quiet));
  check Alcotest.bool "burst round is a tree" true
    (Dynet.Graph.edge_count g4 = 9 && Dynet.Graph.is_connected g4)

let test_schedule_overlay () =
  let n = 10 in
  let backbone = Adversary.Oblivious.static (Dynet.Graph_gen.cycle ~n) in
  let churn = Adversary.Oblivious.tree_rotator ~seed:44 ~n in
  let combined = Adversary.Schedule.overlay backbone churn in
  for r = 1 to 8 do
    let g = Adversary.Schedule.get combined r in
    Alcotest.check Alcotest.bool
      (Printf.sprintf "round %d contains backbone" r)
      true
      (Dynet.Edge_set.subset
         (Dynet.Graph.edges (Adversary.Schedule.get backbone r))
         (Dynet.Graph.edges g));
    Alcotest.check Alcotest.bool
      (Printf.sprintf "round %d contains churn layer" r)
      true
      (Dynet.Edge_set.subset
         (Dynet.Graph.edges (Adversary.Schedule.get churn r))
         (Dynet.Graph.edges g))
  done;
  Alcotest.check_raises "mismatched sizes"
    (Invalid_argument "Schedule.overlay: node counts differ") (fun () ->
      ignore
        (Adversary.Schedule.overlay backbone
           (Adversary.Oblivious.tree_rotator ~seed:1 ~n:4)))

let test_stabilized_schedule () =
  let base = Adversary.Oblivious.tree_rotator ~seed:11 ~n:14 in
  let sched = Adversary.Schedule.stabilized ~sigma:3 base in
  let seq = Adversary.Schedule.prefix sched 30 in
  check Alcotest.bool "3-stable" true (Dynet.Dyn_seq.is_sigma_stable seq ~sigma:3);
  check Alcotest.bool "still connected" true (Dynet.Dyn_seq.all_connected seq)

let prop_stabilized_any_family =
  QCheck.Test.make ~name:"stabilized: sigma-stability for every family"
    ~count:20
    (QCheck.pair (QCheck.int_range 1 4) (QCheck.int_range 0 6))
    (fun (sigma, family) ->
      let families = Adversary.Oblivious.all_named ~n:10 ~seed:(family * 7) in
      let _, base = List.nth families (family mod List.length families) in
      let sched = Adversary.Schedule.stabilized ~sigma base in
      let seq = Adversary.Schedule.prefix sched 15 in
      Dynet.Dyn_seq.is_sigma_stable seq ~sigma && Dynet.Dyn_seq.all_connected seq)

(* {2 Broadcast lower-bound adversary} *)

let lb_view ~n ~k ~knows ~chosen =
  { Adversary.Broadcast_lb.knows; chosen }
  |> fun v ->
  ignore n;
  ignore k;
  v

let test_lb_silent_round_single_component () =
  (* With nobody broadcasting, all edges are free: the graph is a
     spanning structure of one free component. *)
  let n = 20 and k = 10 in
  let lb = Adversary.Broadcast_lb.create ~rng:(Dynet.Rng.make ~seed:1) ~n ~k in
  let view =
    lb_view ~n ~k ~knows:(fun _ _ -> false) ~chosen:(Array.make n None)
  in
  let g = Adversary.Broadcast_lb.next_graph lb view in
  check Alcotest.bool "connected" true (Dynet.Graph.is_connected g);
  (match Adversary.Broadcast_lb.history lb with
  | [ (broadcasters, components) ] ->
      check Alcotest.int "no broadcasters" 0 broadcasters;
      check Alcotest.int "single free component" 1 components
  | _ -> Alcotest.fail "expected one history entry");
  check Alcotest.int "spanning tree size" (n - 1) (Dynet.Graph.edge_count g)

let test_lb_always_connected_under_pressure () =
  (* Everyone broadcasts a token nobody covers: worst case for the
     adversary; graphs must still be connected. *)
  let n = 16 and k = 16 in
  let lb = Adversary.Broadcast_lb.create ~rng:(Dynet.Rng.make ~seed:2) ~n ~k in
  for round = 1 to 10 do
    let chosen = Array.init n (fun v -> Some ((v + round) mod k)) in
    let view = lb_view ~n ~k ~knows:(fun v i -> i = v) ~chosen in
    let g = Adversary.Broadcast_lb.next_graph lb view in
    Alcotest.check Alcotest.bool "connected" true (Dynet.Graph.is_connected g)
  done

let test_lb_free_edges_do_not_teach () =
  (* If every node already "covers" every token (knows everything),
     all edges are free and the graph has a single component. *)
  let n = 12 and k = 6 in
  let lb = Adversary.Broadcast_lb.create ~rng:(Dynet.Rng.make ~seed:3) ~n ~k in
  let chosen = Array.init n (fun v -> Some (v mod k)) in
  let view = lb_view ~n ~k ~knows:(fun _ _ -> true) ~chosen in
  ignore (Adversary.Broadcast_lb.next_graph lb view);
  (match Adversary.Broadcast_lb.history lb with
  | [ (_, components) ] -> check Alcotest.int "one component" 1 components
  | _ -> Alcotest.fail "expected one history entry")

let test_lb_k_prime_density () =
  (* E[|K'|] = nk/4; check it is within generous bounds (the proof
     needs <= 0.3nk whp). *)
  let n = 64 and k = 64 in
  let lb = Adversary.Broadcast_lb.create ~rng:(Dynet.Rng.make ~seed:4) ~n ~k in
  let size = Adversary.Broadcast_lb.k_prime_size lb in
  let expected = float_of_int (n * k) /. 4. in
  check Alcotest.bool "density near 1/4" true
    (float_of_int size > 0.8 *. expected
    && float_of_int size < 1.2 *. expected)

let test_lb_phi_bounds () =
  let n = 32 and k = 32 in
  let lb = Adversary.Broadcast_lb.create ~rng:(Dynet.Rng.make ~seed:5) ~n ~k in
  let phi0 = Adversary.Broadcast_lb.phi lb ~knows:(fun _ _ -> false) in
  check Alcotest.bool "phi(0) around nk/4, certainly <= 0.8nk" true
    (phi0 <= int_of_float (0.8 *. float_of_int (n * k)));
  let phi_full = Adversary.Broadcast_lb.phi lb ~knows:(fun _ _ -> true) in
  check Alcotest.int "phi when everyone knows everything" (n * k) phi_full;
  check Alcotest.bool "phi monotone in knowledge" true (phi0 <= phi_full)

let test_lb_sparse_broadcasters_block_progress () =
  (* Lemma 2.2: a round with very few broadcasters yields a single free
     component whp over K' sampling; repeat over seeds. *)
  let n = 48 and k = 24 in
  let single = ref 0 in
  let trials = 20 in
  for seed = 1 to trials do
    let lb = Adversary.Broadcast_lb.create ~rng:(Dynet.Rng.make ~seed) ~n ~k in
    let chosen = Array.make n None in
    (* two broadcasters << n / log n *)
    chosen.(0) <- Some 0;
    chosen.(1) <- Some 1;
    let view = lb_view ~n ~k ~knows:(fun _ _ -> false) ~chosen in
    ignore (Adversary.Broadcast_lb.next_graph lb view);
    match Adversary.Broadcast_lb.history lb with
    | [ (_, 1) ] -> incr single
    | _ -> ()
  done;
  check Alcotest.bool "almost always a single component" true (!single >= trials - 2)

let test_lb_rejects_wrong_view_size () =
  let lb =
    Adversary.Broadcast_lb.create ~rng:(Dynet.Rng.make ~seed:6) ~n:5 ~k:3
  in
  Alcotest.check_raises "wrong view"
    (Invalid_argument "Broadcast_lb.next_graph: view has wrong node count")
    (fun () ->
      ignore
        (Adversary.Broadcast_lb.next_graph lb
           { Adversary.Broadcast_lb.knows = (fun _ _ -> false);
             chosen = Array.make 4 None }))

let test_lb_create_validation () =
  Alcotest.check_raises "n >= 1"
    (Invalid_argument "Broadcast_lb.create: n must be >= 1") (fun () ->
      ignore (Adversary.Broadcast_lb.create ~rng:(Dynet.Rng.make ~seed:1) ~n:0 ~k:3))

(* {2 The potential function across a real execution}

   Theorem 2.3's engine: Φ(t) = Σ_v |K_v(t) ∪ K'_v| must start at
   ≤ 0.8nk and grow by at most 2(ℓ_r − 1) in round r, where ℓ_r is the
   number of free components the adversary recorded (only the ℓ_r − 1
   non-free connector edges can teach, one token per direction).  We
   drive a full flooding execution and check the inequality round by
   round. *)

let test_lb_potential_growth_bounded () =
  let n = 20 in
  let instance = Gossip.Instance.one_per_node ~n in
  let k = n in
  let lb =
    Adversary.Broadcast_lb.create ~rng:(Dynet.Rng.make ~seed:11) ~n ~k
  in
  let adversary =
    Adversary.Broadcast_lb.to_engine lb ~knows:Gossip.Flooding.knows
      ~token_of:(function
        | Gossip.Payload.Token_msg tok -> Some tok.Gossip.Token.uid
        | Gossip.Payload.Completeness _ | Gossip.Payload.Request _
        | Gossip.Payload.Walk_msg _ | Gossip.Payload.Center_announce ->
            None)
  in
  let phis = ref [] in
  let stop states =
    let phi =
      Adversary.Broadcast_lb.phi lb ~knows:(fun v i ->
          Gossip.Flooding.knows states.(v) i)
    in
    phis := phi :: !phis;
    Gossip.Flooding.all_complete ~k states
  in
  let states = Gossip.Flooding.init ~instance () in
  let result, _ =
    Engine.Runner_broadcast.run Gossip.Flooding.protocol ~states ~adversary
      ~max_rounds:((n * k) + n)
      ~stop ()
  in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  let phis = Array.of_list (List.rev !phis) in
  let history = Array.of_list (Adversary.Broadcast_lb.history lb) in
  check Alcotest.int "one potential sample per round plus the start"
    (Array.length history + 1) (Array.length phis);
  check Alcotest.bool "phi(0) <= 0.8 nk" true
    (float_of_int phis.(0) <= 0.8 *. float_of_int (n * k));
  check Alcotest.int "phi(end) = nk (dissemination solved)" (n * k)
    phis.(Array.length phis - 1);
  Array.iteri
    (fun r (_, components) ->
      let delta = phis.(r + 1) - phis.(r) in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "round %d: delta-phi %d <= 2(l-1) = %d" (r + 1) delta
           (2 * (components - 1)))
        true
        (delta <= 2 * (components - 1)))
    history

(* {2 Request cutter} *)

let test_request_cutter_connected_and_reactive () =
  let n = 12 in
  let adv = Adversary.Request_cutter.adversary ~seed:5 ~n ~cut_prob:1.0 in
  let g1 = adv ~round:1 ~prev:(Dynet.Graph.empty ~n) ~states:[||] ~traffic:[] in
  check Alcotest.bool "round 1 connected" true (Dynet.Graph.is_connected g1);
  (* Report request traffic on a tree edge; with cut_prob 1 it must go. *)
  let e = Option.get (Dynet.Edge_set.choose_opt (Dynet.Graph.edges g1)) in
  let u, v = Dynet.Edge.endpoints e in
  let g2 =
    adv ~round:2 ~prev:g1 ~states:[||]
      ~traffic:[ (u, v, Engine.Msg_class.Request) ]
  in
  check Alcotest.bool "round 2 connected" true (Dynet.Graph.is_connected g2);
  check Alcotest.bool "requested edge removed" false
    (Dynet.Graph.mem_edge g2 u v)

let test_request_cutter_ignores_other_traffic () =
  let n = 10 in
  let adv = Adversary.Request_cutter.adversary ~seed:6 ~n ~cut_prob:1.0 in
  let g1 = adv ~round:1 ~prev:(Dynet.Graph.empty ~n) ~states:[||] ~traffic:[] in
  let e = Option.get (Dynet.Edge_set.choose_opt (Dynet.Graph.edges g1)) in
  let u, v = Dynet.Edge.endpoints e in
  let g2 =
    adv ~round:2 ~prev:g1 ~states:[||]
      ~traffic:[ (u, v, Engine.Msg_class.Token) ]
  in
  check Alcotest.bool "token-carrying edge kept" true (Dynet.Graph.mem_edge g2 u v)

let test_request_cutter_zero_prob_never_cuts () =
  let n = 10 in
  let adv = Adversary.Request_cutter.adversary ~seed:7 ~n ~cut_prob:0.0 in
  let g1 = adv ~round:1 ~prev:(Dynet.Graph.empty ~n) ~states:[||] ~traffic:[] in
  let traffic =
    Dynet.Edge_set.to_list (Dynet.Graph.edges g1)
    |> List.map (fun e ->
           let u, v = Dynet.Edge.endpoints e in
           (u, v, Engine.Msg_class.Request))
  in
  let g2 = adv ~round:2 ~prev:g1 ~states:[||] ~traffic in
  check Alcotest.bool "identical graph" true
    (Dynet.Edge_set.equal (Dynet.Graph.edges g1) (Dynet.Graph.edges g2))

let test_request_cutter_validation () =
  Alcotest.check_raises "bad prob"
    (Invalid_argument "Request_cutter.adversary: cut_prob must be in [0, 1]")
    (fun () ->
      let _ : unit Engine.Runner_unicast.adversary =
        Adversary.Request_cutter.adversary ~seed:1 ~n:5 ~cut_prob:1.5
      in
      ())

let suite =
  [
    ("schedule memoizes", `Quick, test_schedule_memoizes);
    ("schedule is committed", `Quick, test_schedule_is_committed);
    ("schedule rejects round zero", `Quick, test_schedule_rejects_round_zero);
    ("schedule iterate runs in order", `Quick, test_schedule_iterate_order);
    ("all oblivious families connected", `Quick, test_all_families_connected);
    ("static family has bounded churn", `Quick,
     test_static_has_no_churn_after_round_one);
    ("tree rotator churns heavily", `Quick, test_tree_rotator_heavy_churn);
    ("rewiring rate 0 is static", `Quick, test_rewiring_rate_zero_is_static_after_init);
    ("rewiring keeps backbone", `Quick, test_rewiring_keeps_backbone);
    ("churn bursts alternate", `Quick, test_churn_bursts_period);
    ("schedule overlay", `Quick, test_schedule_overlay);
    ("stabilized schedule", `Quick, test_stabilized_schedule);
    qcheck prop_stabilized_any_family;
    ("lb: silent round is one free component", `Quick,
     test_lb_silent_round_single_component);
    ("lb: connected under broadcast pressure", `Quick,
     test_lb_always_connected_under_pressure);
    ("lb: all-covered round is free", `Quick, test_lb_free_edges_do_not_teach);
    ("lb: K' density near 1/4", `Quick, test_lb_k_prime_density);
    ("lb: potential bounds", `Quick, test_lb_phi_bounds);
    ("lb: sparse broadcasters blocked (Lemma 2.2)", `Quick,
     test_lb_sparse_broadcasters_block_progress);
    ("lb: view size validated", `Quick, test_lb_rejects_wrong_view_size);
    ("lb: creation validated", `Quick, test_lb_create_validation);
    ("lb: potential growth bounded by components (Thm 2.3)", `Quick,
     test_lb_potential_growth_bounded);
    ("request cutter cuts requested edges", `Quick,
     test_request_cutter_connected_and_reactive);
    ("request cutter ignores other traffic", `Quick,
     test_request_cutter_ignores_other_traffic);
    ("request cutter with cut_prob 0", `Quick,
     test_request_cutter_zero_prob_never_cuts);
    ("request cutter validation", `Quick, test_request_cutter_validation);
  ]
