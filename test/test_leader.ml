(* Tests for the adversary-competitive leader-election protocol
   (E13, the paper's Section-4 direction). *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let static_env ~n ~seed =
  Gossip.Runners.Oblivious
    (Adversary.Oblivious.static
       (Dynet.Graph_gen.random_connected (Dynet.Rng.make ~seed) ~n ~p:0.2))

let test_elects_on_static_graph () =
  let n = 16 in
  let result, states =
    Gossip.Runners.leader_election ~n ~env:(static_env ~n ~seed:1) ()
  in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  check Alcotest.bool "everyone agrees on n-1" true
    (Array.for_all (fun st -> Gossip.Leader_election.champion st = n - 1) states)

let test_elects_under_heavy_churn () =
  let n = 20 in
  let env =
    Gossip.Runners.Oblivious (Adversary.Oblivious.tree_rotator ~seed:2 ~n)
  in
  let result, states = Gossip.Runners.leader_election ~n ~env () in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  check Alcotest.bool "elected" true (Gossip.Leader_election.elected ~n states)

let test_rounds_near_diameter_on_path () =
  (* On a static path the max id (at one end) must travel n-1 hops:
     rounds = diameter, not more. *)
  let n = 12 in
  let env =
    Gossip.Runners.Oblivious (Adversary.Oblivious.static (Dynet.Graph_gen.path ~n))
  in
  let result, _ = Gossip.Runners.leader_election ~n ~env () in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  check Alcotest.int "rounds = n - 1" (n - 1) result.Engine.Run_result.rounds

let test_no_retransmission_when_static_and_settled () =
  (* Once agreement has propagated on a static graph the network goes
     silent: after a short catch-up (nodes that improved in the final
     round still tell already-knowing neighbors once), message totals
     stop growing — doubling the horizon adds nothing. *)
  let n = 12 in
  let run_for max_rounds =
    let states = Gossip.Leader_election.init ~n in
    let result, _ =
      Engine.Runner_unicast.run Gossip.Leader_election.protocol ~states
        ~adversary:
          (match static_env ~n ~seed:3 with
          | Gossip.Runners.Oblivious s -> Adversary.Schedule.unicast s
          | Gossip.Runners.Request_cutting _ -> assert false)
        ~max_rounds
        ~stop:(fun _ -> false)
        ()
    in
    Engine.Ledger.total result.Engine.Run_result.ledger
  in
  check Alcotest.int "silence after agreement" (run_for (4 * n))
    (run_for (8 * n))

let test_improvement_accounting () =
  let n = 14 in
  let env = static_env ~n ~seed:4 in
  let _, states = Gossip.Runners.leader_election ~n ~env () in
  (* Node n-1 never improves (it starts with the max); every other node
     improves at least once. *)
  check Alcotest.int "leader never improves" 0
    (Gossip.Leader_election.improvements states.(n - 1));
  Array.iteri
    (fun v st ->
      if v <> n - 1 then
        Alcotest.check Alcotest.bool
          (Printf.sprintf "node %d improved" v)
          true
          (Gossip.Leader_election.improvements st >= 1))
    states

let prop_elects_on_any_family =
  QCheck.Test.make ~name:"leader election: elects under every family"
    ~count:20
    (QCheck.pair (QCheck.int_range 4 24) QCheck.small_nat)
    (fun (n, seed) ->
      let families = Adversary.Oblivious.all_named ~n ~seed in
      let _, sched = List.nth families (seed mod List.length families) in
      let result, states =
        Gossip.Runners.leader_election ~n ~env:(Gossip.Runners.Oblivious sched) ()
      in
      result.Engine.Run_result.completed
      && Gossip.Leader_election.elected ~n states)

let suite =
  [
    ("elects on a static graph", `Quick, test_elects_on_static_graph);
    ("elects under heavy churn", `Quick, test_elects_under_heavy_churn);
    ("rounds = diameter on a path", `Quick, test_rounds_near_diameter_on_path);
    ("silent after agreement", `Quick,
     test_no_retransmission_when_static_and_settled);
    ("improvement accounting", `Quick, test_improvement_accounting);
    qcheck prop_elects_on_any_family;
  ]
