(* Tests for the fault-injection layer: plan construction and
   validation, the Fault_plan.none identity property (a run with the
   null plan is bit-identical — ledger, trace, final states — to a run
   that never mentions faults), fault-seed reproducibility, scripted
   crash-round semantics, graceful-degradation accounting, and the
   Reliable ack/retransmit wrapper under message faults. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* {2 Helpers} *)

let rotator ~seed ~n =
  Adversary.Schedule.stabilized ~sigma:3
    (Adversary.Oblivious.tree_rotator ~seed ~n)

let all_classes =
  [
    Engine.Msg_class.Token; Engine.Msg_class.Completeness;
    Engine.Msg_class.Request; Engine.Msg_class.Walk; Engine.Msg_class.Center;
    Engine.Msg_class.Control;
  ]

(* Everything the ledger accounts for, as one comparable value. *)
let ledger_fingerprint (l : Engine.Ledger.t) =
  ( Engine.Ledger.total l,
    List.map (Engine.Ledger.count l) all_classes,
    Engine.Ledger.tc l,
    Engine.Ledger.removals l,
    Engine.Ledger.learnings l,
    Engine.Ledger.rounds l,
    Engine.Ledger.load_list l )

let run_single ?faults ~seed ~n ~k () =
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let obs = Obs.Sink.memory () in
  let result, states =
    Gossip.Runners.single_source ~instance
      ~env:(Gossip.Runners.Oblivious (rotator ~seed ~n))
      ?faults ~obs ()
  in
  (result, states, Obs.Sink.events obs)

let run_flooding ?faults ~seed ~n () =
  let instance = Gossip.Instance.one_per_node ~n in
  let obs = Obs.Sink.memory () in
  let result, states =
    Gossip.Runners.flooding ~instance ~schedule:(rotator ~seed ~n) ?faults
      ~obs ()
  in
  (result, states, Obs.Sink.events obs)

let fault_events_by_kind events kind =
  List.length
    (List.filter
       (function
         | Obs.Trace.Fault { kind = k; _ } -> k = kind | _ -> false)
       events)

(* {2 Plan construction and validation} *)

let test_plan_validation () =
  let invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  invalid "loss > 1" (fun () -> Faults.Plan.make ~loss:1.5 ~seed:1 ());
  invalid "loss < 0" (fun () -> Faults.Plan.make ~loss:(-0.1) ~seed:1 ());
  invalid "dup > 1" (fun () -> Faults.Plan.make ~dup:2. ~seed:1 ());
  invalid "crash < 0" (fun () -> Faults.Plan.make ~crash:(-1.) ~seed:1 ());
  invalid "restart > 1" (fun () -> Faults.Plan.make ~restart:1.01 ~seed:1 ());
  invalid "loss nan" (fun () -> Faults.Plan.make ~loss:Float.nan ~seed:1 ());
  invalid "negative delay" (fun () ->
      Faults.Plan.make ~max_delay:(-1) ~seed:1 ())

let test_plan_none_detection () =
  check Alcotest.bool "all-zero make is none" true
    (Faults.Plan.is_none (Faults.Plan.make ~seed:7 ()));
  (* restart alone can never fire: nothing ever crashes *)
  check Alcotest.bool "restart-only make is none" true
    (Faults.Plan.is_none (Faults.Plan.make ~restart:0.9 ~seed:7 ()));
  check Alcotest.bool "loss make is active" false
    (Faults.Plan.is_none (Faults.Plan.make ~loss:0.1 ~seed:7 ()));
  check Alcotest.bool "delay make is active" false
    (Faults.Plan.is_none (Faults.Plan.make ~max_delay:2 ~seed:7 ()));
  check Alcotest.bool "scripted is active" false
    (Faults.Plan.is_none (Faults.Plan.scripted ~crashes:[ (1, 0) ] ()));
  let run = Faults.Plan.start Faults.Plan.none ~n:4 in
  check Alcotest.bool "none run inactive" false (Faults.Plan.active run);
  check Alcotest.bool "none run never dooms" false (Faults.Plan.doomed run)

let test_counts_basics () =
  let c = Faults.Counts.create () in
  check Alcotest.bool "fresh is zero" true (Faults.Counts.is_zero c);
  c.Faults.Counts.drops <- 3;
  c.Faults.Counts.retransmits <- 1;
  check Alcotest.bool "bumped not zero" false (Faults.Counts.is_zero c);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "fields in declaration order"
    [
      ("drops", 3); ("dups", 0); ("delays", 0); ("crashes", 0);
      ("restarts", 0); ("retransmits", 1);
    ]
    (Faults.Counts.to_fields c)

(* {2 The none-identity property} *)

(* Runs with [Fault_plan.none] — passed explicitly or as an all-zero
   [make] — must be bit-identical to runs that never mention faults:
   same ledger, same trace stream, same final states, no fault
   report. *)
let prop_none_identity_unicast =
  QCheck.Test.make ~count:10 ~name:"Plan.none unicast run is bit-identical"
    QCheck.(pair (int_bound 1000) (int_range 6 12))
    (fun (seed, n) ->
      let plain = run_single ~seed ~n ~k:n () in
      let with_none = run_single ~faults:Faults.Plan.none ~seed ~n ~k:n () in
      let with_zero =
        run_single ~faults:(Faults.Plan.make ~loss:0. ~seed ()) ~seed ~n ~k:n
          ()
      in
      let fingerprint (result, states, events) =
        ( ledger_fingerprint result.Engine.Run_result.ledger,
          result.Engine.Run_result.rounds,
          result.Engine.Run_result.outcome,
          states,
          events )
      in
      let (result, _, _) = plain in
      result.Engine.Run_result.fault_counts = None
      && fingerprint plain = fingerprint with_none
      && fingerprint plain = fingerprint with_zero)

let prop_none_identity_broadcast =
  QCheck.Test.make ~count:10 ~name:"Plan.none broadcast run is bit-identical"
    QCheck.(pair (int_bound 1000) (int_range 6 12))
    (fun (seed, n) ->
      let plain = run_flooding ~seed ~n () in
      let with_none = run_flooding ~faults:Faults.Plan.none ~seed ~n () in
      let fingerprint (result, states, events) =
        ( ledger_fingerprint result.Engine.Run_result.ledger,
          result.Engine.Run_result.outcome,
          states,
          events )
      in
      let (result, _, _) = plain in
      result.Engine.Run_result.fault_counts = None
      && fingerprint plain = fingerprint with_none)

(* {2 Reproducibility and trace/count symmetry} *)

let faulty_plan ~fault_seed =
  Faults.Plan.make ~loss:0.2 ~dup:0.1 ~crash:0.01 ~max_delay:2
    ~seed:fault_seed ()

let test_fault_seed_reproducible () =
  let go () = run_single ~faults:(faulty_plan ~fault_seed:11) ~seed:5 ~n:10 ~k:10 () in
  let r1, s1, e1 = go () and r2, s2, e2 = go () in
  check Alcotest.bool "same ledger" true
    (ledger_fingerprint r1.Engine.Run_result.ledger
    = ledger_fingerprint r2.Engine.Run_result.ledger);
  check Alcotest.bool "same states" true (s1 = s2);
  check Alcotest.bool "same trace" true (e1 = e2);
  let counts r =
    match r.Engine.Run_result.fault_counts with
    | Some c -> Faults.Counts.to_fields c
    | None -> Alcotest.fail "faulty run must report fault counts"
  in
  check Alcotest.bool "same fault counts" true (counts r1 = counts r2);
  let r3, _, _ =
    run_single ~faults:(faulty_plan ~fault_seed:12) ~seed:5 ~n:10 ~k:10 ()
  in
  check Alcotest.bool "different fault seed, different faults" false
    (counts r1 = counts r3)

let test_trace_count_symmetry () =
  (* Every tallied fault is visible as a Fault trace event, kind by
     kind — the counts are a summary of the stream, not a second
     opinion. *)
  List.iter
    (fun (name, result, events) ->
      match result.Engine.Run_result.fault_counts with
      | None -> Alcotest.failf "%s: expected fault counts" name
      | Some c ->
          let pairs =
            [
              ("drop", c.Faults.Counts.drops);
              ("dup", c.Faults.Counts.dups);
              ("delay", c.Faults.Counts.delays);
              ("crash", c.Faults.Counts.crashes);
              ("restart", c.Faults.Counts.restarts);
            ]
          in
          List.iter
            (fun (kind, count) ->
              check Alcotest.int
                (Printf.sprintf "%s: %s events = count" name kind)
                count
                (fault_events_by_kind events kind))
            pairs)
    [
      (let r, _, e =
         run_single ~faults:(faulty_plan ~fault_seed:3) ~seed:9 ~n:10 ~k:10 ()
       in
       ("unicast", r, e));
      (let r, _, e =
         run_flooding ~faults:(faulty_plan ~fault_seed:4) ~seed:9 ~n:10 ()
       in
       ("broadcast", r, e));
    ]

(* {2 Scripted crash-round semantics} *)

let test_scripted_crash_semantics () =
  let n = 6 in
  let faults =
    Faults.Plan.scripted ~crashes:[ (1, 1) ] ~restarts:[ (4, 1) ] ()
  in
  let result, _, events = run_flooding ~faults ~seed:2 ~n () in
  let counts = Option.get result.Engine.Run_result.fault_counts in
  check Alcotest.int "one crash" 1 counts.Faults.Counts.crashes;
  check Alcotest.int "one restart" 1 counts.Faults.Counts.restarts;
  check Alcotest.int "crash event traced" 1
    (fault_events_by_kind events "crash");
  check Alcotest.int "restart event traced" 1
    (fault_events_by_kind events "restart");
  (* the crashed node's inbox was discarded while it was down: on a
     connected round graph some neighbor of node 1 broadcast in rounds
     1..3 (every node starts with a token), so drops must be seen *)
  check Alcotest.bool "crashed inbox discarded" true
    (counts.Faults.Counts.drops > 0);
  check Alcotest.int "drops traced one event per message"
    counts.Faults.Counts.drops
    (fault_events_by_kind events "drop");
  (* the restarted node lost its state but flooding re-teaches it *)
  check Alcotest.bool "run still completes" true
    result.Engine.Run_result.completed

let test_crashed_node_sends_nothing () =
  (* n = 2: crash node 1 for the whole run; only node 0 can ever send,
     so every Send event's src must be 0 while node 1 is down. *)
  let faults = Faults.Plan.scripted ~crashes:[ (1, 1) ] () in
  let instance = Gossip.Instance.one_per_node ~n:2 in
  let obs = Obs.Sink.memory () in
  let result, _ =
    Gossip.Runners.flooding ~instance
      ~schedule:(Adversary.Oblivious.static (Dynet.Graph_gen.path ~n:2))
      ~faults ~obs ~max_rounds:6 ()
  in
  let sends_from_1 =
    List.filter
      (function Obs.Trace.Send { src = 1; _ } -> true | _ -> false)
      (Obs.Sink.events obs)
  in
  check Alcotest.int "crashed node sent nothing" 0 (List.length sends_from_1);
  check Alcotest.bool "run cannot complete" false
    result.Engine.Run_result.completed

let test_all_crashed_aborts () =
  let n = 5 in
  let faults =
    Faults.Plan.scripted ~crashes:(List.init n (fun v -> (1, v))) ()
  in
  let result, _, _ = run_flooding ~faults ~seed:3 ~n () in
  (match result.Engine.Run_result.outcome with
  | Engine.Run_result.Aborted _ -> ()
  | _ -> Alcotest.fail "expected Aborted when every node is down for good");
  check Alcotest.bool "not completed" false result.Engine.Run_result.completed

(* {2 Graceful-degradation accounting} *)

let test_partial_coverage () =
  let n = 10 and k = 10 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let result, _ =
    Gossip.Runners.single_source ~instance
      ~env:(Gossip.Runners.Oblivious (rotator ~seed:4 ~n))
      ~max_rounds:1 ()
  in
  (match result.Engine.Run_result.outcome with
  | Engine.Run_result.Partial { achieved; target } ->
      check Alcotest.(option int) "target = n*k" (Some (n * k)) target;
      check Alcotest.bool "achieved at least the source's k" true
        (achieved >= k);
      let cov =
        Option.get (Engine.Run_result.coverage result.Engine.Run_result.outcome)
      in
      check Alcotest.bool "coverage in (0, 1)" true (cov > 0. && cov < 1.)
  | _ -> Alcotest.fail "a 1-round cap must yield Partial");
  check Alcotest.(option (float 1e-9)) "completed runs cover 1" (Some 1.)
    (Engine.Run_result.coverage Engine.Run_result.Completed)

(* {2 The Reliable wrapper} *)

module Reliable_single = Gossip.Reliable.Make ((val Gossip.Single_source.protocol))

let test_reliable_wrap_validation () =
  let states = Gossip.Single_source.init
      ~instance:(Gossip.Instance.single_source ~n:4 ~k:2 ~source:0) ()
  in
  let module R = Reliable_single in
  let invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  invalid "rto < 1" (fun () -> R.wrap ~rto:0 states);
  invalid "backoff < 1" (fun () -> R.wrap ~backoff:0.5 states);
  invalid "max_rto < rto" (fun () -> R.wrap ~rto:8 ~max_rto:4 states)

let test_reliable_clean_matches_bare_rounds () =
  (* With no faults, acks ride along but the inner protocol sees the
     exact same deliveries: same rounds to completion as the bare run. *)
  let bare, _, _ = run_single ~seed:6 ~n:10 ~k:10 () in
  let instance = Gossip.Instance.single_source ~n:10 ~k:10 ~source:0 in
  let reliable, _, _ =
    Gossip.Runners.reliable_single_source ~instance
      ~env:(Gossip.Runners.Oblivious (rotator ~seed:6 ~n:10))
      ()
  in
  check Alcotest.bool "both complete" true
    (bare.Engine.Run_result.completed
    && reliable.Engine.Run_result.completed);
  check Alcotest.int "same rounds" bare.Engine.Run_result.rounds
    reliable.Engine.Run_result.rounds

let test_reliable_completes_under_loss () =
  let n = 12 and k = 12 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let faults = Faults.Plan.make ~loss:0.2 ~seed:21 () in
  let result, _, retransmits =
    Gossip.Runners.reliable_single_source ~instance
      ~env:(Gossip.Runners.Oblivious (rotator ~seed:8 ~n))
      ~faults ()
  in
  check Alcotest.bool "completes under 20% loss" true
    result.Engine.Run_result.completed;
  check Alcotest.bool "retransmitted to get there" true (retransmits > 0);
  let counts = Option.get result.Engine.Run_result.fault_counts in
  check Alcotest.int "retransmits folded into fault counts" retransmits
    counts.Faults.Counts.retransmits

(* Regression: duplicated or delayed requests used to queue two serves
   for the same asker, so bare multi-source emitted two tokens on one
   edge in one round — a Protocol_violation on essentially every faulty
   run.  Extras are now dropped at receive (the asker re-requests). *)
let test_multi_source_bare_survives_dup_delay () =
  List.iter
    (fun seed ->
      let n = 9 and k = 6 and s = 4 in
      let instance =
        Gossip.Instance.multi_source ~rng:(Dynet.Rng.make ~seed) ~n ~k ~s
      in
      let faults =
        Faults.Plan.make ~loss:0.2 ~dup:0.2 ~max_delay:2 ~seed ()
      in
      let result, _ =
        Gossip.Runners.multi_source ~instance
          ~env:(Gossip.Runners.Oblivious (rotator ~seed ~n))
          ~max_rounds:512 ~faults ()
      in
      check Alcotest.bool
        (Printf.sprintf "seed %d completes under dup + delay" seed)
        true result.Engine.Run_result.completed)
    [ 1; 2; 3; 4; 5 ]

let test_reliable_multi_completes_under_mixed_faults () =
  let n = 10 and k = 10 and s = 3 in
  let instance =
    Gossip.Instance.multi_source
      ~rng:(Dynet.Rng.make ~seed:31)
      ~n ~k ~s
  in
  let faults =
    Faults.Plan.make ~loss:0.15 ~dup:0.3 ~max_delay:2 ~seed:22 ()
  in
  let result, _, _ =
    Gossip.Runners.reliable_multi_source ~instance
      ~env:(Gossip.Runners.Oblivious (rotator ~seed:9 ~n))
      ~faults ()
  in
  check Alcotest.bool "completes under loss + dup + delay" true
    result.Engine.Run_result.completed

let suite =
  [
    Alcotest.test_case "plan validation" `Quick test_plan_validation;
    Alcotest.test_case "plan none detection" `Quick test_plan_none_detection;
    Alcotest.test_case "counts basics" `Quick test_counts_basics;
    qcheck prop_none_identity_unicast;
    qcheck prop_none_identity_broadcast;
    Alcotest.test_case "fault seed reproducible" `Quick
      test_fault_seed_reproducible;
    Alcotest.test_case "trace/count symmetry" `Quick test_trace_count_symmetry;
    Alcotest.test_case "scripted crash semantics" `Quick
      test_scripted_crash_semantics;
    Alcotest.test_case "crashed node sends nothing" `Quick
      test_crashed_node_sends_nothing;
    Alcotest.test_case "all crashed aborts" `Quick test_all_crashed_aborts;
    Alcotest.test_case "partial coverage" `Quick test_partial_coverage;
    Alcotest.test_case "reliable wrap validation" `Quick
      test_reliable_wrap_validation;
    Alcotest.test_case "reliable clean = bare rounds" `Quick
      test_reliable_clean_matches_bare_rounds;
    Alcotest.test_case "reliable completes under loss" `Quick
      test_reliable_completes_under_loss;
    Alcotest.test_case "bare multi-source under dup + delay" `Quick
      test_multi_source_bare_survives_dup_delay;
    Alcotest.test_case "reliable under mixed faults" `Quick
      test_reliable_multi_completes_under_mixed_faults;
  ]
