(* Tests for the analysis layer: table rendering/CSV, cell formatting,
   and smoke + shape tests of the experiment harness at small sizes. *)

let check = Alcotest.check

(* {2 Table} *)

let sample_table () =
  Analysis.Table.make ~title:"demo" ~columns:[ "name"; "value" ]
    ~notes:[ "a note" ]
    [ [ "alpha"; "1" ]; [ "beta"; "23" ] ]

let test_table_accessors () =
  let t = sample_table () in
  check Alcotest.string "title" "demo" (Analysis.Table.title t);
  check (Alcotest.list Alcotest.string) "columns" [ "name"; "value" ]
    (Analysis.Table.columns t);
  check Alcotest.int "rows" 2 (List.length (Analysis.Table.rows t))

let test_table_rejects_ragged_rows () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Table.make: row 0 has 1 cells, expected 2") (fun () ->
      ignore
        (Analysis.Table.make ~title:"t" ~columns:[ "a"; "b" ] [ [ "x" ] ]))

let test_table_render_alignment () =
  let rendered = Analysis.Table.render (sample_table ()) in
  check Alcotest.bool "contains title" true
    (String.length rendered > 0
    && Astring.String.is_infix ~affix:"demo" rendered);
  (* Numeric cells are right-aligned: the "1" under "value" is padded. *)
  check Alcotest.bool "right-aligned number" true
    (Astring.String.is_infix ~affix:"alpha      1" rendered);
  check Alcotest.bool "note included" true
    (Astring.String.is_infix ~affix:"a note" rendered)

let test_table_csv () =
  let csv = Analysis.Table.to_csv (sample_table ()) in
  check Alcotest.string "csv" "name,value\nalpha,1\nbeta,23" csv

let test_table_csv_escaping () =
  let t =
    Analysis.Table.make ~title:"t" ~columns:[ "a" ]
      [ [ "x,y" ]; [ "say \"hi\"" ] ]
  in
  check Alcotest.string "escaped"
    "a\n\"x,y\"\n\"say \"\"hi\"\"\""
    (Analysis.Table.to_csv t)

let test_cell_formatters () =
  check Alcotest.string "small int plain" "99999" (Analysis.Table.fint 99_999);
  check Alcotest.string "big int scientific" "1.00e+06"
    (Analysis.Table.fint 1_000_000);
  check Alcotest.string "integral float" "42" (Analysis.Table.ffloat 42.);
  check Alcotest.string "ratio" "0.50x" (Analysis.Table.fratio 0.5);
  check Alcotest.string "three significant digits" "3.14"
    (Analysis.Table.ffloat 3.14159)

(* {2 Experiments (small smoke + shape)} *)

let notes_all_pass t =
  (* Every embedded shape check in the table's notes says PASS. *)
  let rendered = Analysis.Table.render t in
  not (Astring.String.is_infix ~affix:"FAIL" rendered)

let test_free_edges_small () =
  let t = Analysis.Experiments.free_edges ~n:24 ~trials:8 ~seed:3 () in
  check Alcotest.bool "shape checks pass" true (notes_all_pass t);
  check Alcotest.bool "has rows" true (List.length (Analysis.Table.rows t) >= 4)

let test_time_vs_messages_small () =
  let t = Analysis.Experiments.time_vs_messages ~n:12 ~seed:3 () in
  check Alcotest.int "three algorithms" 3 (List.length (Analysis.Table.rows t))

let test_static_baseline_small () =
  let t = Analysis.Experiments.static_baseline ~ns:[ 12 ] ~seed:3 () in
  check Alcotest.bool "shape checks pass" true (notes_all_pass t);
  check Alcotest.int "four k per n" 4 (List.length (Analysis.Table.rows t))

let test_single_source_experiment_small () =
  let t = Analysis.Experiments.single_source ~ns:[ 10 ] ~seed:3 () in
  check Alcotest.bool "shape checks pass" true (notes_all_pass t);
  (* 3 k-values x 4 environments *)
  check Alcotest.int "rows" 12 (List.length (Analysis.Table.rows t))

let test_multi_source_experiment_small () =
  let t =
    Analysis.Experiments.multi_source ~n:10 ~k:20 ~ss:[ 1; 4; 10 ] ~seed:3 ()
  in
  check Alcotest.bool "shape checks pass" true (notes_all_pass t);
  check Alcotest.int "rows" 3 (List.length (Analysis.Table.rows t))

let test_lower_bound_experiment_small () =
  let t = Analysis.Experiments.lower_bound ~ns:[ 12 ] ~seed:3 () in
  check Alcotest.bool "shape checks pass" true (notes_all_pass t);
  check Alcotest.int "four strategies" 4 (List.length (Analysis.Table.rows t))

let test_experiment_records_span () =
  let metrics = Obs.Metrics.create () in
  ignore (Analysis.Experiments.environments ~n:8 ~rounds:5 ~metrics ~seed:3 ());
  ignore (Analysis.Experiments.environments ~n:8 ~rounds:5 ~metrics ~seed:4 ());
  match Obs.Metrics.summary metrics "experiment/e0-environments" with
  | None -> Alcotest.fail "experiment span not recorded"
  | Some s ->
      check Alcotest.int "one sample per run" 2 s.Obs.Metrics.count;
      check Alcotest.bool "wall-clock non-negative" true
        (s.Obs.Metrics.min >= 0.)

let test_experiments_deterministic () =
  let render () =
    Analysis.Table.render (Analysis.Experiments.free_edges ~n:16 ~trials:5 ~seed:9 ())
  in
  check Alcotest.string "same seed, same table" (render ()) (render ())

let suite =
  [
    ("table accessors", `Quick, test_table_accessors);
    ("table rejects ragged rows", `Quick, test_table_rejects_ragged_rows);
    ("table rendering", `Quick, test_table_render_alignment);
    ("table csv", `Quick, test_table_csv);
    ("table csv escaping", `Quick, test_table_csv_escaping);
    ("cell formatters", `Quick, test_cell_formatters);
    ("experiment: free edges (small)", `Quick, test_free_edges_small);
    ("experiment: time vs messages (small)", `Quick,
     test_time_vs_messages_small);
    ("experiment: static baseline (small)", `Quick, test_static_baseline_small);
    ("experiment: single source (small)", `Quick,
     test_single_source_experiment_small);
    ("experiment: multi source (small)", `Quick,
     test_multi_source_experiment_small);
    ("experiment: lower bound (small)", `Quick,
     test_lower_bound_experiment_small);
    ("experiment records wall-clock span", `Quick, test_experiment_records_span);
    ("experiments deterministic", `Quick, test_experiments_deterministic);
  ]
