(* Tests for the GF(2) substrate and the network-coding gossip used by
   the E12 token-forwarding-barrier comparison. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* {2 Gf2.Vec} *)

let test_vec_unit_and_get () =
  let v = Gossip.Gf2.Vec.unit ~dim:100 63 in
  check Alcotest.bool "bit set" true (Gossip.Gf2.Vec.get v 63);
  check Alcotest.bool "other bit clear" false (Gossip.Gf2.Vec.get v 62);
  check Alcotest.bool "not zero" false (Gossip.Gf2.Vec.is_zero v);
  check (Alcotest.option Alcotest.int) "lowest set" (Some 63)
    (Gossip.Gf2.Vec.lowest_set v);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Gf2.Vec.unit: index out of range") (fun () ->
      ignore (Gossip.Gf2.Vec.unit ~dim:10 10))

let test_vec_xor_involution () =
  let a = Gossip.Gf2.Vec.unit ~dim:70 3 in
  let b = Gossip.Gf2.Vec.unit ~dim:70 65 in
  let ab = Gossip.Gf2.Vec.xor a b in
  check Alcotest.bool "both bits" true
    (Gossip.Gf2.Vec.get ab 3 && Gossip.Gf2.Vec.get ab 65);
  check Alcotest.bool "xor with self is zero" true
    (Gossip.Gf2.Vec.is_zero (Gossip.Gf2.Vec.xor ab ab));
  check Alcotest.bool "xor undoes" true
    (Gossip.Gf2.Vec.equal a (Gossip.Gf2.Vec.xor ab b))

let test_vec_dimension_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Gf2.Vec.xor: dimension mismatch") (fun () ->
      ignore
        (Gossip.Gf2.Vec.xor
           (Gossip.Gf2.Vec.zero ~dim:5)
           (Gossip.Gf2.Vec.zero ~dim:6)))

let prop_vec_xor_commutative =
  QCheck.Test.make ~name:"gf2: xor commutative/associative" ~count:100
    (QCheck.triple QCheck.small_nat QCheck.small_nat QCheck.small_nat)
    (fun (x, y, z) ->
      let dim = 80 in
      let rng = Dynet.Rng.make ~seed:(x + (100 * y) + (10000 * z)) in
      let a = Gossip.Gf2.Vec.random rng ~dim in
      let b = Gossip.Gf2.Vec.random rng ~dim in
      let c = Gossip.Gf2.Vec.random rng ~dim in
      Gossip.Gf2.Vec.(
        equal (xor a b) (xor b a) && equal (xor (xor a b) c) (xor a (xor b c))))

let prop_vec_random_tail_masked =
  QCheck.Test.make ~name:"gf2: random vectors stay in dimension" ~count:60
    (QCheck.pair (QCheck.int_range 1 130) QCheck.small_nat)
    (fun (dim, seed) ->
      let v = Gossip.Gf2.Vec.random (Dynet.Rng.make ~seed) ~dim in
      (* All coordinate reads in range succeed and xor-with-self is 0;
         canonical equality relies on masked tails. *)
      Gossip.Gf2.Vec.is_zero (Gossip.Gf2.Vec.xor v v)
      && (match Gossip.Gf2.Vec.lowest_set v with
         | None -> true
         | Some i -> i < dim))

(* {2 Gf2.Basis} *)

let test_basis_rank_and_span () =
  let b = Gossip.Gf2.Basis.create ~dim:4 in
  let u i = Gossip.Gf2.Vec.unit ~dim:4 i in
  check Alcotest.bool "insert e0" true
    (Gossip.Gf2.Basis.insert b (u 0) ~payload:10);
  check Alcotest.bool "insert e1" true
    (Gossip.Gf2.Basis.insert b (u 1) ~payload:20);
  check Alcotest.bool "e0+e1 dependent" false
    (Gossip.Gf2.Basis.insert b (Gossip.Gf2.Vec.xor (u 0) (u 1)) ~payload:30);
  check Alcotest.int "rank 2" 2 (Gossip.Gf2.Basis.rank b);
  check Alcotest.bool "not full" false (Gossip.Gf2.Basis.full b);
  ignore (Gossip.Gf2.Basis.insert b (u 2) ~payload:40);
  ignore (Gossip.Gf2.Basis.insert b (u 3) ~payload:50);
  check Alcotest.bool "full" true (Gossip.Gf2.Basis.full b)

let test_basis_decode_from_mixed_rows () =
  (* Insert combinations, not units, and verify decode recovers the
     per-coordinate payloads by consistent xor. *)
  let dim = 3 in
  let b = Gossip.Gf2.Basis.create ~dim in
  let u i = Gossip.Gf2.Vec.unit ~dim i in
  let p = [| 111; 222; 333 |] in
  let v01 = Gossip.Gf2.Vec.xor (u 0) (u 1) in
  let v12 = Gossip.Gf2.Vec.xor (u 1) (u 2) in
  let v012 = Gossip.Gf2.Vec.xor v01 (u 2) in
  check Alcotest.bool "v01" true
    (Gossip.Gf2.Basis.insert b v01 ~payload:(p.(0) lxor p.(1)));
  check Alcotest.bool "v12" true
    (Gossip.Gf2.Basis.insert b v12 ~payload:(p.(1) lxor p.(2)));
  check Alcotest.bool "v012" true
    (Gossip.Gf2.Basis.insert b v012 ~payload:(p.(0) lxor p.(1) lxor p.(2)));
  check Alcotest.bool "full" true (Gossip.Gf2.Basis.full b);
  let decoded = Gossip.Gf2.Basis.decode b in
  Array.iteri
    (fun i expected ->
      check (Alcotest.option Alcotest.int)
        (Printf.sprintf "payload %d" i)
        (Some expected) decoded.(i))
    p

let prop_basis_rank_bounded =
  QCheck.Test.make ~name:"gf2: rank never exceeds dim or insert count"
    ~count:60
    (QCheck.pair (QCheck.int_range 1 40) QCheck.small_nat)
    (fun (dim, seed) ->
      let rng = Dynet.Rng.make ~seed in
      let b = Gossip.Gf2.Basis.create ~dim in
      let inserted = ref 0 in
      for _ = 1 to 2 * dim do
        let v = Gossip.Gf2.Vec.random rng ~dim in
        if Gossip.Gf2.Basis.insert b v ~payload:(Dynet.Rng.int rng 1000) then
          incr inserted
      done;
      Gossip.Gf2.Basis.rank b = !inserted && !inserted <= dim)

let prop_basis_random_vectors_fill =
  QCheck.Test.make ~name:"gf2: ~2 dim random vectors reach full rank whp"
    ~count:30 (QCheck.int_range 2 40) (fun dim ->
      let rng = Dynet.Rng.make ~seed:(dim * 17) in
      let b = Gossip.Gf2.Basis.create ~dim in
      for _ = 1 to (2 * dim) + 16 do
        ignore
          (Gossip.Gf2.Basis.insert b
             (Gossip.Gf2.Vec.random rng ~dim)
             ~payload:0)
      done;
      Gossip.Gf2.Basis.full b)

(* {2 Coded broadcast} *)

let test_coded_completes_and_decodes () =
  let n = 16 in
  let instance = Gossip.Instance.one_per_node ~n in
  let schedule = Adversary.Oblivious.fresh_random ~seed:4 ~n ~p:0.3 in
  let result, states =
    Gossip.Runners.coded_broadcast ~instance ~schedule ~seed:5 ()
  in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  check Alcotest.bool "all decoded" true
    (Gossip.Coded_bcast.all_decoded ~k:n states);
  check Alcotest.bool "full rank everywhere" true
    (Array.for_all (fun st -> Gossip.Coded_bcast.rank st = n) states)

let test_coded_much_faster_than_flooding () =
  let n = 20 in
  let instance = Gossip.Instance.one_per_node ~n in
  let flood, _ =
    Gossip.Runners.flooding ~instance
      ~schedule:(Adversary.Oblivious.fresh_random ~seed:6 ~n ~p:0.3)
      ()
  in
  let coded, _ =
    Gossip.Runners.coded_broadcast ~instance
      ~schedule:(Adversary.Oblivious.fresh_random ~seed:6 ~n ~p:0.3)
      ~seed:7 ()
  in
  check Alcotest.bool "both complete" true
    (flood.Engine.Run_result.completed && coded.Engine.Run_result.completed);
  check Alcotest.bool "coding at least 4x fewer rounds" true
    (4 * coded.Engine.Run_result.rounds <= flood.Engine.Run_result.rounds)

let test_coded_on_path () =
  (* Diameter-limited: still completes in O(n + k) rounds on a path. *)
  let n = 16 in
  let instance = Gossip.Instance.one_per_node ~n in
  let schedule = Adversary.Oblivious.static (Dynet.Graph_gen.path ~n) in
  let result, _ =
    Gossip.Runners.coded_broadcast ~instance ~schedule ~seed:8
      ~max_rounds:(20 * n) ()
  in
  check Alcotest.bool "completed" true result.Engine.Run_result.completed;
  check Alcotest.bool "linear-ish rounds" true
    (result.Engine.Run_result.rounds <= 8 * n)

let test_payload_of_uid_distinct () =
  let seen = Hashtbl.create 64 in
  for uid = 0 to 2000 do
    let p = Gossip.Coded_bcast.payload_of_uid uid in
    Alcotest.check Alcotest.bool "fresh payload" false (Hashtbl.mem seen p);
    Hashtbl.replace seen p ()
  done

let suite =
  [
    ("gf2 vec unit/get", `Quick, test_vec_unit_and_get);
    ("gf2 vec xor involution", `Quick, test_vec_xor_involution);
    ("gf2 vec dimension mismatch", `Quick, test_vec_dimension_mismatch);
    qcheck prop_vec_xor_commutative;
    qcheck prop_vec_random_tail_masked;
    ("gf2 basis rank and span", `Quick, test_basis_rank_and_span);
    ("gf2 basis decode from mixed rows", `Quick,
     test_basis_decode_from_mixed_rows);
    qcheck prop_basis_rank_bounded;
    qcheck prop_basis_random_vectors_fill;
    ("coded gossip completes and decodes", `Quick,
     test_coded_completes_and_decodes);
    ("coded gossip beats flooding", `Quick, test_coded_much_faster_than_flooding);
    ("coded gossip on a path", `Quick, test_coded_on_path);
    ("payloads distinct", `Quick, test_payload_of_uid_distinct);
  ]
