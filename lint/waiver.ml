(* Waiver comments.

   Two forms, checked strictly so waivers stay greppable and honest:

     (* dynlint: allow <rule> — <reason> *)
     (* dynlint: domain-safe — <reason> *)

   The dash may be an em-dash, "--", or "-".  A waiver covers
   violations of its rule on the same line or on the line immediately
   after (so it can sit on its own line above the flagged expression).
   Malformed "dynlint:" comments and [allow] waivers that match no
   violation are themselves violations: a stale waiver is a lie about
   the code. *)

type kind = Allow of string | Domain_safe

type t = {
  kind : kind;
  reason : string;
  line : int;  (* line the comment starts on *)
  end_line : int;
  mutable used : bool;
}

let trim = String.trim

(* [strip_dash s] expects [s] to start with a dash separator and
   returns what follows it; rule names themselves contain hyphens
   (physical-eq), so the separator is only ever looked for *after* the
   keyword and rule tokens have been consumed. *)
let strip_dash s =
  let n = String.length s in
  let sub a = String.sub s a (n - a) in
  if n >= 3 && String.equal (String.sub s 0 3) "\xe2\x80\x94" then
    Some (sub 3) (* U+2014 em-dash *)
  else if n >= 2 && s.[0] = '-' && s.[1] = '-' then Some (sub 2)
  else if n >= 1 && s.[0] = '-' then Some (sub 1)
  else None

(* First whitespace-delimited token of [s], and the rest. *)
let next_token s =
  let s = trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, trim (String.sub s i (String.length s - i)))

let prefix = "dynlint:"

(* [parse_comment text loc] returns [None] for ordinary comments,
   [Some (Ok w)] for well-formed waivers, and [Some (Error msg)] for
   comments that invoke dynlint but don't parse. *)
let parse_comment text (loc : Location.t) ~known_rules =
  let body = trim text in
  if not (String.length body >= String.length prefix
          && String.equal (String.sub body 0 (String.length prefix)) prefix)
  then None
  else
    let rest =
      trim (String.sub body (String.length prefix)
              (String.length body - String.length prefix))
    in
    let line = loc.loc_start.pos_lnum and end_line = loc.loc_end.pos_lnum in
    let make kind reason = { kind; reason; line; end_line; used = false } in
    let finish kind tail =
      match strip_dash tail with
      | None -> Some (Error "waiver is missing a \xe2\x80\x94 <reason> part")
      | Some reason ->
          let reason = trim reason in
          if String.equal reason "" then
            Some (Error "waiver has an empty reason")
          else Some (Ok (make kind reason))
    in
    match next_token rest with
    | "domain-safe", tail -> finish Domain_safe tail
    | "allow", tail -> (
        match next_token tail with
        | "", _ -> Some (Error "allow waiver is missing its rule name")
        | rule, tail ->
            if List.exists (String.equal rule) known_rules then
              finish (Allow rule) tail
            else
              Some (Error (Printf.sprintf "waiver names unknown rule %S" rule)))
    | _ ->
        Some
          (Error
             "waiver must be 'allow <rule> \xe2\x80\x94 <reason>' or \
              'domain-safe \xe2\x80\x94 <reason>'")

(* Does [w] cover a violation of [rule] reported at [line]? *)
let covers w ~rule ~line =
  let right_rule =
    match (w.kind, rule) with
    | Allow r, _ -> String.equal r rule
    | Domain_safe, _ -> String.equal rule "domain-safety"
  in
  right_rule && line >= w.line && line <= w.end_line + 1

let claim w = w.used <- true
