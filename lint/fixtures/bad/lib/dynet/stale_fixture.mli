val plus_one : int -> int
val nth : int array -> int -> int
