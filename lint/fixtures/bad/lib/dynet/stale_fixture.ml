(* Seeded stale waivers: nothing here allocates on a hot path or
   indexes unsafely, so both attributes must be reported stale. *)

let plus_one x = x + 1 [@@dynlint.alloc_ok "nothing allocates here"]
let nth (a : int array) i = a.(i) [@@dynlint.unsafe_ok "plain checked access"]
