(* Seeded hot-alloc violations for the analyzer smoke test: one
   allocation directly inside a hot function, one reached through a
   transitive call.  A dynlint build that stops catching either must
   fail the fixture check loudly. *)

let box x = [ x ]
let hot_direct x = (x, x) [@@dynlint.hot]
let hot_transitive x = box x [@@dynlint.hot]
