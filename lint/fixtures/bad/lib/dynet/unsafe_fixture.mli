val first : int array -> int -> int
