val box : 'a -> 'a list
val hot_direct : 'a -> 'a * 'a
val hot_transitive : 'a -> 'a list
