(* Seeded unsafe-index violation: no same-function bounds guard, no
   [@dynlint.unsafe_ok] waiver. *)

let first (a : int array) i = Array.unsafe_get a i
