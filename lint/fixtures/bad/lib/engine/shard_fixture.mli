val leak : Shard_pool.t -> int array -> unit
