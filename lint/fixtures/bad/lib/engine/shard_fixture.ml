(* Seeded shard-ownership violation: the job writes a cell that is
   not indexed by its [lo, hi) span, staged per shard, or job-local. *)

let leak pool (out : int array) =
  Engine.Shard_pool.run pool (fun ~shard:_ ~lo:_ ~hi:_ -> out.(0) <- 1)
