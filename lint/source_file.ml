(* One scanned source file: raw text, parsetree, comments, and the
   token-level module-reference sets the domain-safety pass feeds on.

   Everything here uses compiler-libs (the toolchain's own parser), so
   dynlint accepts exactly the language the build accepts — no
   second-grammar drift. *)

type kind = Ml | Mli

type parsed =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature
  | Syntax_error of { line : int; col : int; msg : string }

type t = {
  path : string;  (* as given on the command line, for diagnostics *)
  id : string;  (* normalized repo-relative id, e.g. "lib/dynet/bitset.ml" *)
  kind : kind;
  content : string;
  parsed : parsed;
  comments : (string * Location.t) list;
  (* Capitalized idents appearing anywhere in the token stream: a
     cheap, sound over-approximation of "modules this file can
     reach". *)
  uidents : (string, unit) Hashtbl.t;
  (* [M.f] applications found in the token stream, as (M, f) pairs;
     used to find Sweep.map call sites. *)
  qualified_calls : (string * string) list;
}

let kind_of_path path =
  if Filename.check_suffix path ".mli" then Mli else Ml

let module_name id =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename id))

let position_of (pos : Lexing.position) =
  (pos.pos_lnum, pos.pos_cnum - pos.pos_bol)

(* Lex the whole file once, collecting capitalized idents and
   [UIDENT DOT LIDENT] runs.  The file has already parsed, so the
   lexer cannot fail here; a defensive guard stops on any error. *)
let token_scan ~path content =
  let uidents = Hashtbl.create 32 in
  let calls = ref [] in
  let lexbuf = Lexing.from_string content in
  Location.init lexbuf path;
  Lexer.init ();
  let pending_uident = ref None (* Some m after [M], Some m after [M .] *)
  and after_dot = ref false in
  let continue = ref true in
  while !continue do
    match Lexer.token lexbuf with
    | Parser.EOF -> continue := false
    | Parser.UIDENT m ->
        Hashtbl.replace uidents m ();
        pending_uident := Some m;
        after_dot := false
    | Parser.DOT -> after_dot := Option.is_some !pending_uident
    | Parser.LIDENT f ->
        (match (!pending_uident, !after_dot) with
        | Some m, true -> calls := (m, f) :: !calls
        | _ -> ());
        pending_uident := None;
        after_dot := false
    | _ ->
        pending_uident := None;
        after_dot := false
    | exception _ -> continue := false
  done;
  (uidents, List.rev !calls)

let load ~path ~id =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let kind = kind_of_path path in
  let parse () =
    let lexbuf = Lexing.from_string content in
    Location.init lexbuf path;
    match kind with
    | Ml -> Structure (Parse.implementation lexbuf)
    | Mli -> Signature (Parse.interface lexbuf)
  in
  let parsed, comments =
    match parse () with
    | ast -> (ast, Lexer.comments ())
    | exception Syntaxerr.Error err ->
        let loc = Syntaxerr.location_of_error err in
        let line, col = position_of loc.loc_start in
        (Syntax_error { line; col; msg = "syntax error" }, [])
    | exception Lexer.Error (_, loc) ->
        let line, col = position_of loc.loc_start in
        (Syntax_error { line; col; msg = "lexical error" }, [])
  in
  let uidents, qualified_calls =
    match parsed with
    | Syntax_error _ -> (Hashtbl.create 1, [])
    | Structure _ | Signature _ -> token_scan ~path content
  in
  { path; id; kind; content; parsed; comments; uidents; qualified_calls }

let references t name = Hashtbl.mem t.uidents name

let calls t ~modname ~fns =
  List.exists
    (fun (m, f) -> String.equal m modname && List.mem f fns)
    t.qualified_calls
