(* Orchestration: walk the tree, run every rule, apply waivers, and
   render the report.

   File identity: each directory passed to [run] is labelled by its
   basename, and files get ids like "lib/dynet/bitset.ml" regardless of
   where the tree physically sits (the dune @lint alias runs in a
   sandbox; tests run against fixture trees in temp dirs).  All scoping
   below matches on ids. *)

type config = {
  strict_poly : string list;  (* id prefixes with the poly-compare rule *)
  print_allowed : string list;  (* id prefixes free to print *)
  physeq_allowed : string list;  (* exact ids free to use == / != *)
  mli_required : string list;  (* id prefixes where .ml needs .mli *)
}

let default_config =
  {
    strict_poly =
      [
        "lib/dynet/"; "lib/engine/"; "lib/fuzz/"; "lib/gossip/";
        "lib/scenario/";
      ];
    print_allowed = [ "lib/obs/"; "bin/"; "bench/" ];
    physeq_allowed =
      [
      "lib/dynet/graph.ml"; "lib/dynet/stability.ml"; "lib/dynet/csr.ml";
      "lib/engine/soa.ml";
    ];
    mli_required = [ "lib/" ];
  }

let has_prefix prefixes id =
  List.exists
    (fun p ->
      String.length id >= String.length p
      && String.equal (String.sub id 0 (String.length p)) p)
    prefixes

let scope_of config id =
  {
    Rules.strict_poly = has_prefix config.strict_poly id;
    print_allowed = has_prefix config.print_allowed id;
    physeq_allowed = List.exists (String.equal id) config.physeq_allowed;
  }

(* {2 Tree walk} *)

let rec walk_dir dir rel acc =
  Array.fold_left
    (fun acc entry ->
      let path = Filename.concat dir entry in
      let rel = if String.equal rel "" then entry else rel ^ "/" ^ entry in
      if Sys.is_directory path then
        if String.length entry > 0 && entry.[0] = '.' then acc
        else walk_dir path rel acc
      else if
        Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli"
      then (path, rel) :: acc
      else acc)
    acc
    (let entries = Sys.readdir dir in
     Array.sort String.compare entries;
     entries)

let collect_files dirs =
  List.concat_map
    (fun dir ->
      let label = Filename.basename dir in
      walk_dir dir label [] |> List.rev)
    dirs

(* {2 Waivers} *)

let file_waivers (src : Source_file.t) =
  List.fold_left
    (fun (ws, errs) (text, loc) ->
      match Waiver.parse_comment text loc ~known_rules:Rules.all_rules with
      | None -> (ws, errs)
      | Some (Ok w) -> (w :: ws, errs)
      | Some (Error msg) ->
          (ws, Rules.violation src loc "bad-waiver" msg :: errs))
    ([], []) src.comments

(* Apply waivers: drop covered violations, then report stale [allow]
   waivers.  Unused [domain-safe] waivers are tolerated — reachability
   shrinks as code moves, and the annotation stays true. *)
let apply_waivers waivers violations =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (id, ws) -> Hashtbl.replace tbl id ws) waivers;
  let surviving =
    List.filter
      (fun (v : Rules.violation) ->
        let ws = Option.value (Hashtbl.find_opt tbl v.id) ~default:[] in
        match
          List.find_opt
            (fun w -> Waiver.covers w ~rule:v.rule ~line:v.line)
            ws
        with
        | Some w ->
            Waiver.claim w;
            false
        | None -> true)
      violations
  in
  let stale =
    List.concat_map
      (fun (id, ws) ->
        List.filter_map
          (fun (w : Waiver.t) ->
            match (w.used, w.kind) with
            | false, Waiver.Allow rule ->
                Some
                  {
                    Rules.path = id;
                    id;
                    line = w.line;
                    col = 0;
                    rule = "stale-waiver";
                    msg =
                      Printf.sprintf
                        "allow %s waiver matches no violation; delete it"
                        rule;
                  }
            | _ -> None)
          ws)
      waivers
  in
  surviving @ stale

(* {2 Entry points} *)

type report = {
  violations : Rules.violation list;
  files_scanned : int;
  sweep_reachable : string list;
}

let run ?(config = default_config) dirs =
  let files =
    List.map
      (fun (path, id) -> Source_file.load ~path ~id)
      (collect_files dirs)
  in
  let waivers, waiver_errs =
    List.fold_left
      (fun (ws, errs) (src : Source_file.t) ->
        let w, e = file_waivers src in
        ((src.id, w) :: ws, e @ errs))
      ([], []) files
  in
  let per_file =
    List.concat_map
      (fun (src : Source_file.t) ->
        Rules.check src ~scope:(scope_of config src.id))
      files
  in
  (* Interface-presence rule. *)
  let ids = List.map (fun (s : Source_file.t) -> s.id) files in
  let missing_mli =
    List.filter_map
      (fun (s : Source_file.t) ->
        match s.kind with
        | Source_file.Mli -> None
        | Source_file.Ml ->
            if
              has_prefix config.mli_required s.id
              && not (List.exists (String.equal (s.id ^ "i")) ids)
            then
              Some
                {
                  Rules.path = s.path;
                  id = s.id;
                  line = 1;
                  col = 0;
                  rule = "missing-mli";
                  msg = "library module has no interface (.mli)";
                }
            else None)
      files
  in
  let ds_violations, sweep_reachable = Domain_safety.check ~files in
  let violations =
    apply_waivers waivers
      (waiver_errs @ per_file @ missing_mli @ ds_violations)
    |> List.sort (fun (a : Rules.violation) b ->
           match String.compare a.id b.id with
           | 0 -> compare (a.line, a.col, a.rule) (b.line, b.col, b.rule)
           | c -> c)
  in
  { violations; files_scanned = List.length files; sweep_reachable }

(* Lint one in-memory source (fixture tests): per-file rules only. *)
let lint_source ?(config = default_config) ~id content =
  let tmp = Filename.temp_file "dynlint" (Filename.basename id) in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out_bin tmp in
      output_string oc content;
      close_out oc;
      let src = Source_file.load ~path:tmp ~id in
      let src = { src with Source_file.path = id } in
      let ws, werrs = file_waivers src in
      let vs = werrs @ Rules.check src ~scope:(scope_of config id) in
      apply_waivers [ (id, ws) ] vs)

(* {2 Rendering} *)

let pp_violation ppf (v : Rules.violation) =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" v.path v.line v.col v.rule v.msg

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let report_to_json r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\":\"dynlint/v1\",";
  Buffer.add_string buf
    (Printf.sprintf "\"files_scanned\":%d,\"violations\":[" r.files_scanned);
  List.iteri
    (fun i (v : Rules.violation) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"msg\":\"%s\"}"
           (json_escape v.id) v.line v.col (json_escape v.rule)
           (json_escape v.msg)))
    r.violations;
  Buffer.add_string buf "],\"sweep_reachable\":[";
  List.iteri
    (fun i id ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\"" (json_escape id)))
    r.sweep_reachable;
  Buffer.add_string buf "]}";
  Buffer.contents buf
