(* Orchestration: walk the tree, run every rule, apply waivers, and
   render the report.

   File identity: each directory passed to [run] is labelled by its
   basename, and files get ids like "lib/dynet/bitset.ml" regardless of
   where the tree physically sits (the dune @lint alias runs in a
   sandbox; tests run against fixture trees in temp dirs).  All scoping
   below matches on ids. *)

type config = {
  strict_poly : string list;  (* id prefixes with the poly-compare rule *)
  print_allowed : string list;  (* id prefixes free to print *)
  physeq_allowed : string list;  (* exact ids free to use == / != *)
  mli_required : string list;  (* id prefixes where .ml needs .mli *)
  unsafe_audited : string list;  (* id prefixes under the unsafe-index audit *)
  shard_scope : string list;  (* id prefixes scanned for Shard_pool jobs *)
}

let default_config =
  {
    strict_poly =
      [
        "lib/dynet/"; "lib/engine/"; "lib/fuzz/"; "lib/gossip/";
        "lib/scenario/"; "lib/serve/"; "bin/"; "bench/";
      ];
    print_allowed = [ "lib/obs/" ];
    physeq_allowed =
      [
      "lib/dynet/graph.ml"; "lib/dynet/stability.ml"; "lib/dynet/csr.ml";
      "lib/engine/soa.ml";
    ];
    mli_required = [ "lib/" ];
    unsafe_audited = [ "lib/dynet/"; "lib/engine/" ];
    shard_scope = [ "lib/" ];
  }

let has_prefix prefixes id =
  List.exists
    (fun p ->
      String.length id >= String.length p
      && String.equal (String.sub id 0 (String.length p)) p)
    prefixes

let scope_of config id =
  {
    Rules.strict_poly = has_prefix config.strict_poly id;
    print_allowed = has_prefix config.print_allowed id;
    physeq_allowed = List.exists (String.equal id) config.physeq_allowed;
  }

(* {2 Tree walk} *)

let rec walk_dir dir rel acc =
  Array.fold_left
    (fun acc entry ->
      let path = Filename.concat dir entry in
      let rel = if String.equal rel "" then entry else rel ^ "/" ^ entry in
      if Sys.is_directory path then
        if String.length entry > 0 && entry.[0] = '.' then acc
        else walk_dir path rel acc
      else if
        Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli"
      then (path, rel) :: acc
      else acc)
    acc
    (let entries = Sys.readdir dir in
     Array.sort String.compare entries;
     entries)

let collect_files dirs =
  List.concat_map
    (fun dir ->
      let label = Filename.basename dir in
      walk_dir dir label [] |> List.rev)
    dirs

(* {2 Waivers} *)

let file_waivers (src : Source_file.t) =
  List.fold_left
    (fun (ws, errs) (text, loc) ->
      match Waiver.parse_comment text loc ~known_rules:Rules.all_rules with
      | None -> (ws, errs)
      | Some (Ok w) -> (w :: ws, errs)
      | Some (Error msg) ->
          (ws, Rules.violation src loc "bad-waiver" msg :: errs))
    ([], []) src.comments

(* Apply waivers: drop covered violations, then report stale [allow]
   waivers.  Unused [domain-safe] waivers are tolerated — reachability
   shrinks as code moves, and the annotation stays true. *)
let apply_waivers waivers violations =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (id, ws) -> Hashtbl.replace tbl id ws) waivers;
  let surviving =
    List.filter
      (fun (v : Rules.violation) ->
        let ws = Option.value (Hashtbl.find_opt tbl v.id) ~default:[] in
        match
          List.find_opt
            (fun w -> Waiver.covers w ~rule:v.rule ~line:v.line)
            ws
        with
        | Some w ->
            Waiver.claim w;
            false
        | None -> true)
      violations
  in
  let stale =
    List.concat_map
      (fun (id, ws) ->
        List.filter_map
          (fun (w : Waiver.t) ->
            match (w.used, w.kind) with
            | false, Waiver.Allow rule ->
                Some
                  {
                    Rules.path = id;
                    id;
                    line = w.line;
                    col = 0;
                    rule = "stale-waiver";
                    msg =
                      Printf.sprintf
                        "allow %s waiver matches no violation; delete it"
                        rule;
                  }
            | _ -> None)
          ws)
      waivers
  in
  surviving @ stale

(* {2 The callgraph pass}

   Builds the shared callgraph and runs the three cross-function
   rules: hot-alloc, unsafe-index, shard-ownership.  Attribute waivers
   ([@dynlint.alloc_ok] / [@dynlint.unsafe_ok]) are claimed here —
   they cover findings of their rule on the annotated construct's
   lines — and any waiver left unclaimed becomes a stale-waiver
   violation, exactly like the comment form. *)

type cg_stats = {
  hot_roots : int;  (* [@@dynlint.hot] functions found *)
  unsafe_sites : int;  (* unsafe_* calls in the audited scope *)
  unsafe_guarded : int;  (* of which analyzer-verified *)
  unsafe_waived : int;  (* of which waived by [@dynlint.unsafe_ok] *)
  shard_jobs : string list;  (* Shard_pool jobs the ownership pass saw *)
}

let attr_of_rule = function
  | "hot-alloc" -> "alloc_ok"
  | "unsafe-index" -> "unsafe_ok"
  | r -> r

let callgraph_pass ~config (files : Source_file.t list) =
  let cg = Callgraph.build files in
  let hot_vs = Hot_alloc.check cg in
  let ui =
    Unsafe_index.check cg ~files ~audited:(has_prefix config.unsafe_audited)
  in
  let so =
    Shard_ownership.check cg ~files ~in_scope:(has_prefix config.shard_scope)
  in
  let claim_attr (v : Rules.violation) =
    match
      List.find_opt
        (fun (w : Callgraph.waiver) ->
          String.equal w.Callgraph.rule v.rule
          && String.equal w.Callgraph.w_id v.id
          && v.line >= w.Callgraph.span_start
          && v.line <= w.Callgraph.span_end)
        cg.Callgraph.waivers
    with
    | Some w ->
        w.Callgraph.used <- true;
        false
    | None -> true
  in
  let hot_vs = List.filter claim_attr hot_vs in
  let ui_vs = List.filter claim_attr ui.Unsafe_index.violations in
  let unsafe_waived =
    List.length ui.Unsafe_index.violations - List.length ui_vs
  in
  let so_vs = List.filter claim_attr so.Shard_ownership.violations in
  let attr_bad =
    List.map
      (fun (src, loc, msg) -> Rules.violation src loc "bad-attr" msg)
      cg.Callgraph.bad_attrs
  in
  let path_of_id id =
    match
      List.find_opt
        (fun (s : Source_file.t) -> String.equal s.Source_file.id id)
        files
    with
    | Some s -> s.Source_file.path
    | None -> id
  in
  let stale_attrs =
    List.filter_map
      (fun (w : Callgraph.waiver) ->
        if w.Callgraph.used then None
        else
          Some
            {
              Rules.path = path_of_id w.Callgraph.w_id;
              id = w.Callgraph.w_id;
              line = w.Callgraph.w_line;
              col = 0;
              rule = "stale-waiver";
              msg =
                Printf.sprintf
                  "[@dynlint.%s] waiver matches no %s finding; delete it"
                  (attr_of_rule w.Callgraph.rule)
                  w.Callgraph.rule;
            })
      cg.Callgraph.waivers
  in
  ( hot_vs @ ui_vs @ so_vs @ attr_bad @ stale_attrs,
    {
      hot_roots = List.length (Callgraph.hot_roots cg);
      unsafe_sites = ui.Unsafe_index.sites;
      unsafe_guarded = ui.Unsafe_index.guarded;
      unsafe_waived;
      shard_jobs = so.Shard_ownership.jobs;
    } )

(* {2 Entry points} *)

type report = {
  violations : Rules.violation list;
  files_scanned : int;
  sweep_reachable : string list;
  stats : cg_stats;
}

let run ?(config = default_config) dirs =
  let files =
    List.map
      (fun (path, id) -> Source_file.load ~path ~id)
      (collect_files dirs)
  in
  let waivers, waiver_errs =
    List.fold_left
      (fun (ws, errs) (src : Source_file.t) ->
        let w, e = file_waivers src in
        ((src.id, w) :: ws, e @ errs))
      ([], []) files
  in
  let per_file =
    List.concat_map
      (fun (src : Source_file.t) ->
        Rules.check src ~scope:(scope_of config src.id))
      files
  in
  (* Interface-presence rule. *)
  let ids = List.map (fun (s : Source_file.t) -> s.id) files in
  let missing_mli =
    List.filter_map
      (fun (s : Source_file.t) ->
        match s.kind with
        | Source_file.Mli -> None
        | Source_file.Ml ->
            if
              has_prefix config.mli_required s.id
              && not (List.exists (String.equal (s.id ^ "i")) ids)
            then
              Some
                {
                  Rules.path = s.path;
                  id = s.id;
                  line = 1;
                  col = 0;
                  rule = "missing-mli";
                  msg = "library module has no interface (.mli)";
                }
            else None)
      files
  in
  let ds_violations, sweep_reachable = Domain_safety.check ~files in
  let cg_violations, stats = callgraph_pass ~config files in
  let violations =
    apply_waivers waivers
      (waiver_errs @ per_file @ missing_mli @ ds_violations @ cg_violations)
    |> List.sort (fun (a : Rules.violation) b ->
           match String.compare a.id b.id with
           | 0 -> compare (a.line, a.col, a.rule) (b.line, b.col, b.rule)
           | c -> c)
  in
  { violations; files_scanned = List.length files; sweep_reachable; stats }

(* Lint one in-memory source (fixture tests): the per-file rules plus
   the callgraph pass on the single-file graph.  The driver-level
   interface-presence and reachability rules stay out — they only mean
   something on a whole tree. *)
let lint_source ?(config = default_config) ~id content =
  let tmp = Filename.temp_file "dynlint" (Filename.basename id) in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out_bin tmp in
      output_string oc content;
      close_out oc;
      let src = Source_file.load ~path:tmp ~id in
      let src = { src with Source_file.path = id } in
      let ws, werrs = file_waivers src in
      let cg_violations, _stats = callgraph_pass ~config [ src ] in
      let vs =
        werrs @ Rules.check src ~scope:(scope_of config id) @ cg_violations
      in
      apply_waivers [ (id, ws) ] vs)

(* {2 Rendering} *)

let pp_violation ppf (v : Rules.violation) =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" v.path v.line v.col v.rule v.msg

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let report_to_json r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\":\"dynlint/v2\",";
  Buffer.add_string buf
    (Printf.sprintf
       "\"files_scanned\":%d,\"hot_roots\":%d,\"unsafe_sites\":%d,\
        \"unsafe_guarded\":%d,\"unsafe_waived\":%d,\"violations\":["
       r.files_scanned r.stats.hot_roots r.stats.unsafe_sites
       r.stats.unsafe_guarded r.stats.unsafe_waived);
  List.iteri
    (fun i (v : Rules.violation) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\
            \"severity\":\"%s\",\"msg\":\"%s\"}"
           (json_escape v.id) v.line v.col (json_escape v.rule)
           (Rules.severity_of_rule v.rule)
           (json_escape v.msg)))
    r.violations;
  Buffer.add_string buf "],\"shard_jobs\":[";
  List.iteri
    (fun i j ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\"" (json_escape j)))
    r.stats.shard_jobs;
  Buffer.add_string buf "],\"sweep_reachable\":[";
  List.iteri
    (fun i id ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\"" (json_escape id)))
    r.sweep_reachable;
  Buffer.add_string buf "]}";
  Buffer.contents buf
