(* Per-file parsetree rules.

   Rule ids (the names waivers use):

     poly-compare   bare [=]/[<>]/[compare] in a strict library whose
                    file does not open the monomorphic [Ops] prelude,
                    or an explicitly qualified [Stdlib.(=)] /
                    [Stdlib.compare] / [Hashtbl.hash] anywhere in a
                    strict library (qualification bypasses shadowing)
     physical-eq    [==]/[!=] outside the physical-reuse allowlist
     obj-magic      [Obj.magic]
     catch-all-try  [try ... with _ ->]
     direct-print   [print_*]/[prerr_*]/[Printf.printf]/... outside
                    the output allowlist (all output flows via Sink)
     missing-mli    a [lib/] module without an interface (driver-level)
     domain-safety  top-level mutable state reachable from Sweep
                    workers (domain_safety.ml)
     hot-alloc      allocation reachable from a [@@dynlint.hot]
                    function (hot_alloc.ml, callgraph-transitive)
     unsafe-index   an [unsafe_*] call with no visible same-function
                    bounds guard (unsafe_index.ml)
     shard-ownership  a write inside a Shard_pool job the analyzer
                    cannot tie to shard-owned state (shard_ownership.ml)
     stale-waiver   an [allow] waiver or [@dynlint.*_ok] attribute
                    matching no violation
     bad-waiver     a [dynlint:] comment that does not parse
     bad-attr       a malformed or misplaced [@dynlint.*] attribute
     syntax         the file does not parse

   The poly-compare rule is two-layered by design: the [Ops] prelude
   shadows [=]/[<>]/[compare] with [int]-only versions, so once a file
   opens it every non-int comparison is a *type error* caught by the
   compiler; dynlint only has to check the discipline (the open is
   present, and nobody reaches around the shadow via [Stdlib.]). *)

type violation = {
  path : string;
  id : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

let all_rules =
  [
    "poly-compare"; "physical-eq"; "obj-magic"; "catch-all-try";
    "direct-print"; "missing-mli"; "domain-safety"; "hot-alloc";
    "unsafe-index"; "shard-ownership"; "stale-waiver"; "bad-waiver";
    "bad-attr"; "syntax";
  ]

(* Reporting severity, used by the JSON report and the SARIF exporter.
   Style-adjacent rules are warnings; everything that can corrupt a
   run (unsound comparison, races, out-of-bounds, hot-loop GC churn,
   analysis integrity) is an error.  Both levels fail the build — the
   split exists so downstream tooling can triage. *)
let severity_of_rule = function
  | "catch-all-try" | "direct-print" | "missing-mli" -> "warning"
  | _ -> "error"

let violation (src : Source_file.t) (loc : Location.t) rule msg =
  let line, col = Source_file.position_of loc.loc_start in
  { path = src.path; id = src.id; line; col; rule; msg }

(* {2 Longident classification} *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> flatten p @ [ s ]
  | Longident.Lapply (p, _) -> flatten p

let is_poly_op = function "=" | "<>" | "compare" -> true | _ -> false

(* Qualified references that reintroduce polymorphic comparison even
   under the [Ops] shadow. *)
let is_qualified_poly lid =
  match flatten lid with
  | [ ("Stdlib" | "Pervasives"); op ] -> is_poly_op op
  | [ "Hashtbl"; "hash" ] | [ "Stdlib"; "Hashtbl"; "hash" ] -> true
  | _ -> false

let is_physical_eq = function
  | Longident.Lident ("==" | "!=") -> true
  | Longident.Ldot (Lident ("Stdlib" | "Pervasives"), ("==" | "!=")) -> true
  | _ -> false

let is_obj_magic lid =
  match flatten lid with
  | [ "Obj"; "magic" ] | [ "Stdlib"; "Obj"; "magic" ] -> true
  | _ -> false

let print_fns =
  [
    "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_char"; "print_float"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_int"; "prerr_char";
    "prerr_float"; "prerr_bytes";
  ]

let is_print lid =
  match flatten lid with
  | [ f ] | [ "Stdlib"; f ] -> List.exists (String.equal f) print_fns
  | [ ("Printf" | "Format"); ("printf" | "eprintf") ]
  | [ "Stdlib"; ("Printf" | "Format"); ("printf" | "eprintf") ] ->
      true
  | _ -> false

(* {2 The structure walk} *)

(* A file satisfies the comparison discipline by opening a module whose
   last component is [Ops] ([open Ops] inside dynet, [open Dynet.Ops]
   elsewhere) at the top level. *)
let opens_ops (str : Parsetree.structure) =
  List.exists
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }
        -> (
          match List.rev (flatten txt) with
          | "Ops" :: _ -> true
          | _ -> false)
      | _ -> false)
    str

type scope = {
  strict_poly : bool;  (* poly-compare rule applies *)
  print_allowed : bool;
  physeq_allowed : bool;
}

let check_structure (src : Source_file.t) ~scope (str : Parsetree.structure) =
  let out = ref [] in
  let add loc rule msg = out := violation src loc rule msg :: !out in
  let has_ops = opens_ops str in
  let check_ident loc lid =
    (match lid with
    | Longident.Lident op when scope.strict_poly && is_poly_op op ->
        if not has_ops then
          add loc "poly-compare"
            (Printf.sprintf
               "polymorphic %s in a strict library: open the monomorphic \
                prelude (Ops / Dynet.Ops) or use a typed comparison"
               (match op with "compare" -> "compare" | o -> "( " ^ o ^ " )"))
    | _ -> ());
    if scope.strict_poly && is_qualified_poly lid then
      add loc "poly-compare"
        (Printf.sprintf "%s bypasses the monomorphic prelude"
           (String.concat "." (flatten lid)));
    if is_physical_eq lid && not scope.physeq_allowed then
      add loc "physical-eq"
        "physical equality outside the Stability physical-reuse allowlist";
    if is_obj_magic lid then add loc "obj-magic" "Obj.magic is forbidden";
    if is_print lid && not scope.print_allowed then
      add loc "direct-print"
        (Printf.sprintf "%s: library output must flow through Obs.Sink"
           (String.concat "." (flatten lid)))
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> check_ident loc txt
          | Pexp_try (_, cases) ->
              List.iter
                (fun (c : Parsetree.case) ->
                  match (c.pc_lhs.ppat_desc, c.pc_guard) with
                  | Ppat_any, None ->
                      add c.pc_lhs.ppat_loc "catch-all-try"
                        "catch-all 'try ... with _ ->' swallows every \
                         exception (including Protocol_violation); match \
                         specific exceptions"
                  | _ -> ())
                cases
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.structure iter str;
  List.rev !out

let check (src : Source_file.t) ~scope =
  match src.parsed with
  | Source_file.Syntax_error { line; col; msg } ->
      [ { path = src.path; id = src.id; line; col; rule = "syntax"; msg } ]
  | Source_file.Signature _ -> []
  | Source_file.Structure str -> check_structure src ~scope str
