(* unsafe-index: every [unsafe_*] call in the audited scope must be
   dominated by a bounds guard the analyzer can see in the same
   function, or carry an [@dynlint.unsafe_ok "reason"] waiver.

   A site counts as analyzer-verified when any of these hold:

     - a call to a [check*]-named helper appears earlier in the same
       function (Plane's accessors call [check_row]/[check_bit] before
       touching the Bigarray; [Engine_error.check_graph] fences whole
       graphs the same way)
     - some argument mentions an enclosing [for]-loop induction
       variable — the loop header is the bounds proof
     - some argument mentions a variable that an enclosing [if]/[while]
       condition compares (the guard dominates the branch), or a
       let-bound variable derived from such a variable

   Everything else is a violation: either add a visible guard or waive
   the site with a reason.  Waivers are stale-checked like every other
   dynlint waiver, so a site that later gains a guard must also drop
   its waiver. *)

let rule = "unsafe-index"

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let comparison_ops = [ "<"; "<="; ">"; ">="; "="; "<>"; "==" ]

(* Does [e] contain a comparison application?  If so its mentioned
   variables are bounds-checked in the guarded branch. *)
let has_comparison (e : Parsetree.expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e' ->
          (match e'.pexp_desc with
          | Pexp_ident { txt = Longident.Lident op; _ }
            when List.mem op comparison_ops ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e');
    }
  in
  it.expr it e;
  !found

type result = {
  violations : Rules.violation list;
  sites : int;  (* unsafe_* applications seen in the audited scope *)
  guarded : int;  (* sites the analyzer verified *)
}

(* Scan one function body (or top-level expression).  [bounded] carries
   the variables currently known to be range-checked; [checked] flips
   once a check*-call has run. *)
let scan_expr ~(stop_at_nested : Parsetree.value_binding -> bool) ~record
    (e : Parsetree.expression) =
  let checked = ref false in
  let rec go bounded (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_apply _ -> (
        let head, args = Callgraph.flatten_apply e in
        match head.pexp_desc with
        | Pexp_ident { txt; _ } ->
            let seg = Callgraph.last_segment (String.concat "." (Callgraph.flatten txt)) in
            if starts_with ~prefix:"check" seg then checked := true;
            if starts_with ~prefix:"unsafe_" seg then begin
              let ok =
                !checked
                || List.exists
                     (fun (_, a) -> Callgraph.mentions_any a bounded)
                     args
              in
              record ~ok e.pexp_loc seg
            end;
            List.iter (fun (_, a) -> go bounded a) args
        | _ ->
            go bounded head;
            List.iter (fun (_, a) -> go bounded a) args)
    | Pexp_for (p, lo, hi, _, body) ->
        go bounded lo;
        go bounded hi;
        go (Callgraph.pat_vars p bounded) body
    | Pexp_ifthenelse (cond, then_, else_) ->
        go bounded cond;
        let bounded' =
          if has_comparison cond then Callgraph.idents_in cond @ bounded
          else bounded
        in
        go bounded' then_;
        Option.iter (go bounded') else_
    | Pexp_while (cond, body) ->
        go bounded cond;
        let bounded' =
          if has_comparison cond then Callgraph.idents_in cond @ bounded
          else bounded
        in
        go bounded' body
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        go bounded scrut;
        List.iter
          (fun (c : Parsetree.case) ->
            let b =
              match c.pc_guard with
              | Some g when has_comparison g ->
                  Callgraph.idents_in g @ bounded
              | _ -> bounded
            in
            Option.iter (go b) c.pc_guard;
            go b c.pc_rhs)
          cases
    | Pexp_let (_, vbs, cont) ->
        let bounded' =
          List.fold_left
            (fun acc (vb : Parsetree.value_binding) ->
              if stop_at_nested vb then acc
              else begin
                go acc vb.pvb_expr;
                (* Derived indices: a let whose right-hand side mentions
                   a bounded variable extends the proof to its name. *)
                if Callgraph.mentions_any vb.pvb_expr acc then
                  Callgraph.pat_vars vb.pvb_pat acc
                else acc
              end)
            bounded vbs
        in
        go bounded' cont
    | _ ->
        Ast_iterator.default_iterator.expr
          { Ast_iterator.default_iterator with expr = (fun _ e' -> go bounded e') }
          e
  in
  go [] e

let check (cg : Callgraph.t) ~(files : Source_file.t list)
    ~(audited : string -> bool) : result =
  let violations = ref [] in
  let sites = ref 0 in
  let guarded = ref 0 in
  let record src ~ok loc seg =
    incr sites;
    if ok then incr guarded
    else
      violations :=
        Rules.violation src loc rule
          (Printf.sprintf
             "%s is not dominated by a visible bounds guard in this \
              function; add a check*, index with a loop/guard variable, \
              or waive with [@dynlint.unsafe_ok \"reason\"]"
             seg)
        :: !violations
  in
  (* Function bodies: each body is scanned exactly once (nested named
     functions are their own callgraph nodes, so the walk stops at
     their bindings). *)
  List.iter
    (fun (fn : Callgraph.func) ->
      let src = fn.Callgraph.src in
      if audited src.Source_file.id then begin
        let stop_at_nested vb =
          Option.is_some (Callgraph.nested_func cg src vb)
        in
        let record = record src in
        match fn.Callgraph.cases with
        | Some cs ->
            List.iter
              (fun (c : Parsetree.case) ->
                Option.iter (scan_expr ~stop_at_nested ~record) c.pc_guard;
                scan_expr ~stop_at_nested ~record c.pc_rhs)
              cs
        | None -> scan_expr ~stop_at_nested ~record fn.Callgraph.body
      end)
    cg.Callgraph.funcs;
  (* Top-level non-function bindings (module initialisation code): no
     enclosing function means no same-function guard; only loop/guard
     locality inside the expression itself can verify a site. *)
  let scan_top (src : Source_file.t) =
    let stop_at_nested vb = Option.is_some (Callgraph.nested_func cg src vb) in
    let record = record src in
    let rec items str =
      List.iter
        (fun (item : Parsetree.structure_item) ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun (vb : Parsetree.value_binding) ->
                  let params, _, _ = Callgraph.peel_params vb.pvb_expr [] in
                  let named =
                    match vb.pvb_pat.ppat_desc with
                    | Ppat_var _ -> true
                    | Ppat_constraint ({ ppat_desc = Ppat_var _; _ }, _) ->
                        true
                    | _ -> false
                  in
                  (* Named functions are covered by the funcs pass. *)
                  if not (named && params <> []) then
                    scan_expr ~stop_at_nested ~record vb.pvb_expr)
                vbs
          | Pstr_eval (e, _) -> scan_expr ~stop_at_nested ~record e
          | Pstr_module
              { pmb_expr = { pmod_desc = Pmod_structure inner; _ }; _ } ->
              items inner
          | _ -> ())
        str
    in
    match src.Source_file.parsed with
    | Source_file.Structure str -> items str
    | Source_file.Signature _ | Source_file.Syntax_error _ -> ()
  in
  List.iter
    (fun (src : Source_file.t) ->
      if src.Source_file.kind = Source_file.Ml && audited src.Source_file.id
      then scan_top src)
    files;
  { violations = List.rev !violations; sites = !sites; guarded = !guarded }
