(* SARIF 2.1.0 export of a dynlint report, for CI artifact upload and
   code-scanning ingestion.  Hand-rolled like the JSON report — the
   subset SARIF requires is small and the tree carries no JSON
   dependency.  Severity maps through [Rules.severity_of_rule]; rule
   metadata comes from [Rules.all_rules] so every result's [ruleId]
   has a matching [tool.driver.rules] entry. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let of_report (r : Driver.report) =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
     \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
     \"name\":\"dynlint\",\"rules\":[";
  List.iteri
    (fun i rule ->
      if i > 0 then Buffer.add_char buf ',';
      add "{\"id\":\"%s\",\"defaultConfiguration\":{\"level\":\"%s\"}}"
        (escape rule)
        (Rules.severity_of_rule rule))
    Rules.all_rules;
  add "]}},\"results\":[";
  List.iteri
    (fun i (v : Rules.violation) ->
      if i > 0 then Buffer.add_char buf ',';
      add
        "{\"ruleId\":\"%s\",\"level\":\"%s\",\"message\":{\"text\":\"%s\"},\
         \"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\
         \"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
        (escape v.rule)
        (Rules.severity_of_rule v.rule)
        (escape v.msg) (escape v.id) (max 1 v.line) (v.col + 1))
    r.Driver.violations;
  add "]}]}";
  Buffer.contents buf
