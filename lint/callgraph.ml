(* The callgraph the cross-function rules share.

   [build] extracts every function binding in the scanned tree — top
   level, nested inside modules, and [let]-bound inside other function
   bodies (the SoA engine's hoisted shard jobs live there) — together
   with the dynlint attributes it carries:

     [@@dynlint.hot]               the function heads a hot path: it and
                                   everything it transitively calls must
                                   not allocate (lint/hot_alloc.ml)
     [@dynlint.alloc_ok "reason"]  waives hot-alloc findings inside the
                                   annotated binding or expression
     [@dynlint.unsafe_ok "reason"] waives unsafe-index findings the same
                                   way (lint/unsafe_index.ml)

   Attribute waivers are claim-checked exactly like the comment form: a
   waiver that covers no finding is a stale-waiver violation, so the
   annotations cannot drift from the code.

   Resolution is name-based and over-approximate in the safe direction,
   like the domain-safety audit: [Lident f] resolves to every function
   named [f] in the same file (innermost scopes included), and
   [M.f] / [Lib.M.f] to every function [f] in any scanned module named
   [M].  Calls into modules outside the tree resolve to nothing and are
   classified by the per-rule external tables instead. *)

type waiver = {
  rule : string;  (* the rule id the attribute waives *)
  reason : string;
  w_id : string;  (* file id carrying the attribute *)
  w_line : int;  (* line of the attribute itself, for stale reports *)
  span_start : int;  (* first line the waiver covers *)
  span_end : int;  (* last line the waiver covers *)
  mutable used : bool;
}

type func = {
  src : Source_file.t;
  name : string;  (* dot-path inside the file: "run_plane.intent_job" *)
  qname : string;  (* Module.name, for diagnostics *)
  loc : Location.t;  (* the binding's location *)
  params : (Asttypes.arg_label * string option) list;  (* leading params *)
  arity : int;  (* required (non-optional) leading parameters *)
  body : Parsetree.expression;  (* expression after the leading params *)
  cases : Parsetree.case list option;  (* [function]-style final param *)
  hot : bool;
}

type t = {
  funcs : func list;
  (* Last name segment -> functions, per file id (local resolution). *)
  by_file : (string * string, func list) Hashtbl.t;
  (* (module name, fn last segment) -> functions (qualified resolution). *)
  by_module : (string, func list) Hashtbl.t;
  waivers : waiver list;
  bad_attrs : (Source_file.t * Location.t * string) list;
  (* Binding locations that became their own [func] nodes: scanners use
     this to stop at a nested definition instead of double-walking it. *)
  nested_vbs : (string * int * int, func) Hashtbl.t;
}

let last_segment name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

(* {2 Attributes} *)

let attr_payload_string (attr : Parsetree.attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let waiver_rule_of_attr = function
  | "dynlint.alloc_ok" -> Some "hot-alloc"
  | "dynlint.unsafe_ok" -> Some "unsafe-index"
  | _ -> None

(* Classify one attribute, covering [span] (the lines of the construct
   it annotates). *)
let scan_attr (src : Source_file.t) ~(span : Location.t) acc
    (attr : Parsetree.attribute) =
  let waivers, bads = acc in
  let name = attr.attr_name.txt in
  let is_dynlint =
    String.length name >= 8 && String.equal (String.sub name 0 8) "dynlint."
  in
  if not is_dynlint then acc
  else
    match waiver_rule_of_attr name with
    | Some rule -> (
        match attr_payload_string attr with
        | Some reason when not (String.equal (String.trim reason) "") ->
            let w =
              {
                rule;
                reason;
                w_id = src.Source_file.id;
                w_line = attr.attr_name.loc.loc_start.pos_lnum;
                span_start = span.loc_start.pos_lnum;
                span_end = span.loc_end.pos_lnum;
                used = false;
              }
            in
            (w :: waivers, bads)
        | Some _ | None ->
            ( waivers,
              ( src,
                attr.attr_name.loc,
                Printf.sprintf "[@%s] needs a non-empty string reason" name )
              :: bads ))
    | None ->
        if String.equal name "dynlint.hot" then
          (* Validity (no payload, binding position) is checked at the
             extraction site; a [dynlint.hot] reaching here hangs on a
             construct the analysis cannot root. *)
          ( waivers,
            ( src,
              attr.attr_name.loc,
              "[@@dynlint.hot] only applies to function bindings" )
            :: bads )
        else
          ( waivers,
            (src, attr.attr_name.loc, Printf.sprintf "unknown dynlint attribute %S" name)
            :: bads )

let has_attr name (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name)
    attrs

(* {2 Function extraction} *)

(* Peel the leading parameter chain: [fun]s and [(type a)] newtypes.
   A trailing [function] counts as one final unnamed parameter. *)
let rec peel_params (e : Parsetree.expression) params =
  match e.pexp_desc with
  | Pexp_fun (label, _default, pat, body) ->
      let name =
        match pat.ppat_desc with
        | Ppat_var v -> Some v.txt
        | Ppat_constraint ({ ppat_desc = Ppat_var v; _ }, _) -> Some v.txt
        | _ -> None
      in
      peel_params body ((label, name) :: params)
  | Pexp_newtype (_, body) -> peel_params body params
  | Pexp_function cases ->
      (List.rev ((Asttypes.Nolabel, None) :: params), e, Some cases)
  | _ -> (List.rev params, e, None)

let required_arity params =
  List.length
    (List.filter
       (fun (l, _) ->
         match l with
         | Asttypes.Nolabel | Asttypes.Labelled _ -> true
         | Asttypes.Optional _ -> false)
       params)

let vb_key (src : Source_file.t) (loc : Location.t) =
  (src.Source_file.id, loc.loc_start.pos_lnum, loc.loc_start.pos_cnum)

(* Walk one file, extracting functions (top-level, nested-module, and
   local) and collecting attribute waivers with their coverage spans. *)
let scan_file (src : Source_file.t)
    ~(add_func : func -> unit)
    ~(register_nested : Source_file.t -> Location.t -> func -> unit)
    ~(add_attrs :
       span:Location.t -> Parsetree.attributes -> unit) =
  let modname = Source_file.module_name src.Source_file.id in
  (* Local function bindings inside [scope] (a dot path). *)
  let rec scan_expr ~scope (e : Parsetree.expression) =
    add_attrs ~span:e.pexp_loc e.pexp_attributes;
    match e.pexp_desc with
    | Pexp_let (_, vbs, cont) ->
        List.iter (scan_binding ~scope ~local:true) vbs;
        scan_expr ~scope cont
    | _ ->
        (* Generic traversal: visit every sub-expression. *)
        Ast_iterator.default_iterator.expr
          {
            Ast_iterator.default_iterator with
            expr = (fun _ e' -> scan_expr ~scope e');
          }
          e
  and scan_binding ~scope ~local (vb : Parsetree.value_binding) =
    let hot = has_attr "dynlint.hot" vb.pvb_attributes in
    let name =
      match vb.pvb_pat.ppat_desc with
      | Ppat_var v -> Some v.txt
      | Ppat_constraint ({ ppat_desc = Ppat_var v; _ }, _) -> Some v.txt
      | _ -> None
    in
    let params, body, cases = peel_params vb.pvb_expr [] in
    (* [dynlint.hot] is legitimate exactly on named function bindings;
       everywhere else [scan_attr] reports it as misplaced. *)
    let attrs =
      if hot && name <> None && params <> [] then
        List.filter
          (fun (a : Parsetree.attribute) ->
            not (String.equal a.attr_name.txt "dynlint.hot"))
          vb.pvb_attributes
      else vb.pvb_attributes
    in
    add_attrs ~span:vb.pvb_loc attrs;
    match name with
    | Some n when params <> [] ->
        let path = if String.equal scope "" then n else scope ^ "." ^ n in
        let f =
          {
            src;
            name = path;
            qname = modname ^ "." ^ path;
            loc = vb.pvb_loc;
            params;
            arity = required_arity params;
            body;
            cases;
            hot;
          }
        in
        add_func f;
        if local then register_nested src vb.pvb_loc f;
        (* Descend for deeper nested functions and attributes. *)
        (match cases with
        | Some cs ->
            List.iter
              (fun (c : Parsetree.case) ->
                Option.iter (scan_expr ~scope:path) c.pc_guard;
                scan_expr ~scope:path c.pc_rhs)
              cs
        | None -> scan_expr ~scope:path body)
    | _ ->
        (* Not a named function: still walk the expression for nested
           functions ([let () = ...] blocks) and attributes. *)
        scan_expr ~scope vb.pvb_expr
  and scan_items ~scope items =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter (scan_binding ~scope ~local:false) vbs
        | Pstr_module
            {
              pmb_name = { txt = Some m; _ };
              pmb_expr = { pmod_desc = Pmod_structure inner; _ };
              _;
            } ->
            let scope' =
              if String.equal scope "" then m else scope ^ "." ^ m
            in
            scan_items ~scope:scope' inner
        | Pstr_recmodule mbs ->
            List.iter
              (fun (mb : Parsetree.module_binding) ->
                match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
                | Some m, Pmod_structure inner ->
                    let scope' =
                      if String.equal scope "" then m else scope ^ "." ^ m
                    in
                    scan_items ~scope:scope' inner
                | _ -> ())
              mbs
        | _ -> ())
      items
  in
  match src.Source_file.parsed with
  | Source_file.Structure str -> scan_items ~scope:"" str
  | Source_file.Signature _ | Source_file.Syntax_error _ -> ()

let build (files : Source_file.t list) =
  let funcs = ref [] in
  let waivers = ref [] in
  let bad_attrs = ref [] in
  let nested_vbs = Hashtbl.create 64 in
  let ml_files =
    List.filter (fun (s : Source_file.t) -> s.Source_file.kind = Source_file.Ml) files
  in
  List.iter
    (fun (src : Source_file.t) ->
      scan_file src
        ~add_func:(fun f -> funcs := f :: !funcs)
        ~register_nested:(fun src loc f ->
          Hashtbl.replace nested_vbs (vb_key src loc) f)
        ~add_attrs:(fun ~span attrs ->
          List.iter
            (fun attr ->
              let ws, bads = scan_attr src ~span (!waivers, !bad_attrs) attr in
              waivers := ws;
              bad_attrs := bads)
            attrs))
    ml_files;
  let funcs = List.rev !funcs in
  let by_file = Hashtbl.create 256 in
  let by_module = Hashtbl.create 256 in
  List.iter
    (fun f ->
      let seg = last_segment f.name in
      let fkey = (f.src.Source_file.id, seg) in
      Hashtbl.replace by_file fkey
        (f :: Option.value (Hashtbl.find_opt by_file fkey) ~default:[]);
      (* Register under the file's module name and, for functions inside
         nested modules, under the nested module's own name (so
         [Pool.alloc] resolves from outside plane.ml too). *)
      let modnames =
        let file_mod = Source_file.module_name f.src.Source_file.id in
        match String.rindex_opt f.name '.' with
        | None -> [ file_mod ]
        | Some i ->
            let prefix = String.sub f.name 0 i in
            let encl = last_segment prefix in
            (* Only module-scoped prefixes start uppercase; a lowercase
               prefix is an enclosing *function*, resolvable only
               file-locally. *)
            if
              String.length encl > 0
              && Char.uppercase_ascii encl.[0] = encl.[0]
              && Char.lowercase_ascii encl.[0] <> encl.[0]
            then [ file_mod; encl ]
            else [ file_mod ]
      in
      List.iter
        (fun m ->
          let mkey = m ^ "." ^ seg in
          Hashtbl.replace by_module mkey
            (f :: Option.value (Hashtbl.find_opt by_module mkey) ~default:[]))
        modnames)
    funcs;
  {
    funcs;
    by_file;
    by_module;
    waivers = List.rev !waivers;
    bad_attrs = List.rev !bad_attrs;
    nested_vbs;
  }

(* {2 Resolution} *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> flatten p @ [ s ]
  | Longident.Lapply (p, _) -> flatten p

(* Resolve a reference made from file [id] to candidate functions in
   the graph.  [Lident f]: same-file functions named [f].  [M.f] (any
   qualification depth): functions [f] in any module named [M]. *)
let resolve_in t ~id lid =
  match flatten lid with
  | [] -> []
  | [ f ] -> Option.value (Hashtbl.find_opt t.by_file (id, f)) ~default:[]
  | path ->
      let f = List.nth path (List.length path - 1) in
      let m = List.nth path (List.length path - 2) in
      Option.value (Hashtbl.find_opt t.by_module (m ^ "." ^ f)) ~default:[]

let resolve t ~(from : func) lid = resolve_in t ~id:from.src.Source_file.id lid

let nested_func t (src : Source_file.t) (vb : Parsetree.value_binding) =
  Hashtbl.find_opt t.nested_vbs (vb_key src vb.pvb_loc)

(* {2 Shared walking helpers} *)

(* Value names a pattern binds. *)
let rec pat_vars (p : Parsetree.pattern) acc =
  match p.ppat_desc with
  | Ppat_var v -> v.txt :: acc
  | Ppat_alias (p, v) -> pat_vars p (v.txt :: acc)
  | Ppat_tuple ps | Ppat_array ps ->
      List.fold_left (fun a p -> pat_vars p a) acc ps
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) ->
      pat_vars p acc
  | Ppat_record (fields, _) ->
      List.fold_left (fun a (_, p) -> pat_vars p a) acc fields
  | Ppat_or (a, b) -> pat_vars b (pat_vars a acc)
  | Ppat_constraint (p, _)
  | Ppat_lazy p
  | Ppat_exception p
  | Ppat_open (_, p) ->
      pat_vars p acc
  | _ -> acc

(* Flatten an application to (head, all args), looking through curried
   application chains and the [@@] / [|>] pipe operators, so arity and
   head classification see the call the compiler sees. *)
let rec flatten_apply (e : Parsetree.expression) :
    Parsetree.expression * (Asttypes.arg_label * Parsetree.expression) list =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> (
      match (f.pexp_desc, args) with
      | ( Pexp_ident { txt = Longident.Lident "@@"; _ },
          [ (Asttypes.Nolabel, g); (Asttypes.Nolabel, x) ] ) ->
          let h, a = flatten_apply g in
          (h, a @ [ (Asttypes.Nolabel, x) ])
      | ( Pexp_ident { txt = Longident.Lident "|>"; _ },
          [ (Asttypes.Nolabel, x); (Asttypes.Nolabel, g) ] ) ->
          let h, a = flatten_apply g in
          (h, a @ [ (Asttypes.Nolabel, x) ])
      | _ ->
          let h, a = flatten_apply f in
          (h, a @ args))
  | _ -> (e, [])

(* All unqualified lowercase idents mentioned anywhere in [e]. *)
let idents_in (e : Parsetree.expression) =
  let out = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e' ->
          (match e'.pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } ->
              if not (List.mem x !out) then out := x :: !out
          | _ -> ());
          Ast_iterator.default_iterator.expr self e');
    }
  in
  it.expr it e;
  !out

let mentions_any e names =
  List.exists (fun x -> List.mem x names) (idents_in e)

let hot_roots t = List.filter (fun f -> f.hot) t.funcs

(* Walk a function's body, stopping at nested bindings that are their
   own nodes.  [f] receives every expression exactly once. *)
let iter_body t (fn : func) (visit : Parsetree.expression -> unit) =
  let rec go (e : Parsetree.expression) =
    visit e;
    match e.pexp_desc with
    | Pexp_let (_, vbs, cont) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            match nested_func t fn.src vb with
            | Some _ -> ()  (* a separate node; don't double-walk *)
            | None -> go vb.pvb_expr)
          vbs;
        go cont
    | _ ->
        Ast_iterator.default_iterator.expr
          { Ast_iterator.default_iterator with expr = (fun _ e' -> go e') }
          e
  in
  match fn.cases with
  | Some cs ->
      List.iter
        (fun (c : Parsetree.case) ->
          Option.iter go c.pc_guard;
          go c.pc_rhs)
        cs
  | None -> go fn.body
