(* shard-ownership: writes reachable from [Shard_pool] jobs must stay
   inside state the executing shard owns.

   [Shard_pool.run pool job] executes [job ~shard ~lo ~hi] on every
   worker domain concurrently; the determinism contract (see
   shard_pool.mli) is that a job writes only

     - span-indexed slices of shared arrays/planes — every index is
       (derived from) the [lo]/[hi]/[shard] parameters, a loop over
       them, or sits under a branch whose condition compares against
       them ([if shard_of.(dst) = shard then ...])
     - worker-local state the job itself allocated ([let len = ref 0]
       staging counters, scratch buffers)

   Cross-shard merging belongs in the coordinator between [run] calls,
   which this rule never scans.  The pass finds every [Shard_pool.run]
   call site in scope, resolves its job argument (inline [fun] or a
   hoisted binding via the callgraph), and walks the job body flagging
   any write whose target the analyzer cannot tie to owned state.  A
   job it cannot resolve to syntax is itself a violation — an invisible
   job means an unchecked contract. *)

let rule = "shard-ownership"

(* Allocation heads whose result is worker-local (the job just made
   it, so writing through it is private by construction). *)
let local_creator lid =
  match Callgraph.flatten lid with
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> true
  | [ ("Array" | "Bytes" | "Buffer" | "Hashtbl" | "Queue" | "Stack"); f ] ->
      List.exists (String.equal f)
        [ "create"; "make"; "init"; "copy"; "make_matrix"; "create_float" ]
  | _ -> false

(* Function names (last segment) that mutate their first/self argument.
   [a.(i) <- x] desugars to [Array.set a i x], so "set" also covers
   array-assignment syntax; [:=]/[incr]/[decr] cover ref cells. *)
let writer_fns =
  [
    "set"; "unsafe_set"; "fill"; "blit"; "clear"; "unset"; "row_clear";
    "load_row"; "store_word"; "union_row_into"; "union_row_from"; "push";
    "add"; "replace"; "remove"; "reset"; "transfer"; ":="; "incr"; "decr";
  ]

type result = {
  violations : Rules.violation list;
  jobs : string list;  (* job names/descriptions analyzed, for the report *)
}

let comparison_ops = [ "<"; "<="; ">"; ">="; "="; "<>"; "==" ]

let has_comparison (e : Parsetree.expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e' ->
          (match e'.pexp_desc with
          | Pexp_ident { txt = Longident.Lident op; _ }
            when List.mem op comparison_ops ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e');
    }
  in
  it.expr it e;
  !found

(* Walk a job body.  [owned] is the set of names the shard provably
   owns: the job's parameters, loop variables spanning them, locally
   created mutable state, derived lets, and variables an enclosing
   guard compares against owned state. *)
let scan_job (src : Source_file.t) ~add ~(params : string list)
    (body : Parsetree.expression) =
  let violation loc target =
    add
      (Rules.violation src loc rule
         (Printf.sprintf
            "write through %s inside a Shard_pool job is not provably \
             shard-owned; index with the job's span parameters, stage \
             into job-local state, or waive with (* dynlint: allow \
             shard-ownership \xe2\x80\x94 <reason> *)"
            target))
  in
  let rec go owned (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_apply _ -> (
        let head, args = Callgraph.flatten_apply e in
        match head.pexp_desc with
        | Pexp_ident { txt; _ } ->
            let seg =
              Callgraph.last_segment
                (String.concat "." (Callgraph.flatten txt))
            in
            if List.mem seg writer_fns then begin
              let ok =
                List.exists
                  (fun (_, a) -> Callgraph.mentions_any a owned)
                  args
              in
              if not ok then violation e.pexp_loc seg
            end;
            List.iter (fun (_, a) -> go owned a) args
        | _ ->
            go owned head;
            List.iter (fun (_, a) -> go owned a) args)
    | Pexp_setfield (obj, _, v) ->
        if not (Callgraph.mentions_any obj owned) then
          violation e.pexp_loc "a mutable record field";
        go owned obj;
        go owned v
    | Pexp_let (_, vbs, cont) ->
        let owned' =
          List.fold_left
            (fun acc (vb : Parsetree.value_binding) ->
              go acc vb.pvb_expr;
              let creates =
                match Callgraph.flatten_apply vb.pvb_expr with
                | { pexp_desc = Pexp_ident { txt; _ }; _ }, _ :: _ ->
                    local_creator txt
                | _ -> false
              in
              (* Worker-local allocations and values derived from owned
                 state extend the owned set to the bound names. *)
              if creates || Callgraph.mentions_any vb.pvb_expr acc then
                Callgraph.pat_vars vb.pvb_pat acc
              else acc)
            owned vbs
        in
        go owned' cont
    | Pexp_for (p, lo, hi, _, fbody) ->
        go owned lo;
        go owned hi;
        let owned' =
          if Callgraph.mentions_any lo owned || Callgraph.mentions_any hi owned
          then Callgraph.pat_vars p owned
          else owned
        in
        go owned' fbody
    | Pexp_ifthenelse (cond, then_, else_) ->
        go owned cond;
        let owned' =
          if has_comparison cond && Callgraph.mentions_any cond owned then
            Callgraph.idents_in cond @ owned
          else owned
        in
        go owned' then_;
        Option.iter (go owned') else_
    | Pexp_while (cond, wbody) ->
        go owned cond;
        let owned' =
          if has_comparison cond && Callgraph.mentions_any cond owned then
            Callgraph.idents_in cond @ owned
          else owned
        in
        go owned' wbody
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        go owned scrut;
        List.iter
          (fun (c : Parsetree.case) ->
            let owned' =
              match c.pc_guard with
              | Some g when has_comparison g && Callgraph.mentions_any g owned
                ->
                  Callgraph.idents_in g @ owned
              | _ -> owned
            in
            (* Destructuring an owned scrutinee passes ownership on. *)
            let owned' =
              if Callgraph.mentions_any scrut owned' then
                Callgraph.pat_vars c.pc_lhs owned'
              else owned'
            in
            Option.iter (go owned') c.pc_guard;
            go owned' c.pc_rhs)
          cases
    | _ ->
        (* Anonymous lambdas are descended with the owned set intact:
           their parameters are NOT owned (an iterator can hand a job
           arbitrary indices), but guards inside still extend it. *)
        Ast_iterator.default_iterator.expr
          {
            Ast_iterator.default_iterator with
            expr = (fun _ e' -> go owned e');
          }
          e
  in
  go params body

let job_params (params : (Asttypes.arg_label * string option) list) =
  List.filter_map (fun (_, n) -> n) params

let check (cg : Callgraph.t) ~(files : Source_file.t list)
    ~(in_scope : string -> bool) : result =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let jobs = ref [] in
  let analyzed = Hashtbl.create 8 in
  let analyze_func (fn : Callgraph.func) =
    let key = Callgraph.vb_key fn.Callgraph.src fn.Callgraph.loc in
    if not (Hashtbl.mem analyzed key) then begin
      Hashtbl.add analyzed key ();
      jobs := fn.Callgraph.qname :: !jobs;
      let params = job_params fn.Callgraph.params in
      match fn.Callgraph.cases with
      | Some cs ->
          List.iter
            (fun (c : Parsetree.case) ->
              scan_job fn.Callgraph.src ~add ~params c.Parsetree.pc_rhs)
            cs
      | None -> scan_job fn.Callgraph.src ~add ~params fn.Callgraph.body
    end
  in
  (* A [Shard_pool.run pool job] application: classify the job. *)
  let handle_run (src : Source_file.t)
      (args : (Asttypes.arg_label * Parsetree.expression) list) =
    let nolabel =
      List.filter_map
        (fun ((l : Asttypes.arg_label), a) ->
          match l with Asttypes.Nolabel -> Some a | _ -> None)
        args
    in
    match nolabel with
    | [ _pool; job ] -> (
        match job.pexp_desc with
        | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ ->
            let params, body, cases = Callgraph.peel_params job [] in
            let names = job_params params in
            jobs :=
              Printf.sprintf "%s:%d:<fun>" src.Source_file.id
                job.pexp_loc.loc_start.pos_lnum
              :: !jobs;
            (match cases with
            | Some cs ->
                List.iter
                  (fun (c : Parsetree.case) ->
                    scan_job src ~add ~params:names c.Parsetree.pc_rhs)
                  cs
            | None -> scan_job src ~add ~params:names body)
        | Pexp_ident { txt; _ } -> (
            match Callgraph.resolve_in cg ~id:src.Source_file.id txt with
            | [] ->
                add
                  (Rules.violation src job.pexp_loc rule
                     (Printf.sprintf
                        "Shard_pool job %s resolves to no function the \
                         analyzer can see; pass a literal fun or a \
                         binding defined in the scanned tree"
                        (String.concat "." (Callgraph.flatten txt))))
            | fns -> List.iter analyze_func fns)
        | _ ->
            add
              (Rules.violation src job.pexp_loc rule
                 "Shard_pool job is not a syntactic function; hoist it \
                  into a named binding so the ownership pass can check \
                  its writes"))
    | _ -> ()  (* partial application: no job to check yet *)
  in
  let is_shard_pool_run (head : Parsetree.expression) =
    match head.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match List.rev (Callgraph.flatten txt) with
        | "run" :: "Shard_pool" :: _ -> true
        | _ -> false)
    | _ -> false
  in
  let scan_for_runs (src : Source_file.t) (e : Parsetree.expression) =
    let rec go (e : Parsetree.expression) =
      (match e.pexp_desc with
      | Pexp_apply _ ->
          let head, args = Callgraph.flatten_apply e in
          if is_shard_pool_run head then handle_run src args
      | _ -> ());
      Ast_iterator.default_iterator.expr
        { Ast_iterator.default_iterator with expr = (fun _ e' -> go e') }
        e
    in
    go e
  in
  (* Every function body in scope is walked once for run sites; bodies
     of nested functions appear as their own callgraph nodes, but the
     generic descent here visits them inline too, so guard with a seen
     set on the binding location to avoid duplicate reports. *)
  let seen_files = Hashtbl.create 16 in
  List.iter
    (fun (src : Source_file.t) ->
      if
        src.Source_file.kind = Source_file.Ml
        && in_scope src.Source_file.id
        && not (Hashtbl.mem seen_files src.Source_file.id)
      then begin
        Hashtbl.add seen_files src.Source_file.id ();
        match src.Source_file.parsed with
        | Source_file.Structure str ->
            let rec items str =
              List.iter
                (fun (item : Parsetree.structure_item) ->
                  match item.pstr_desc with
                  | Pstr_value (_, vbs) ->
                      List.iter
                        (fun (vb : Parsetree.value_binding) ->
                          scan_for_runs src vb.pvb_expr)
                        vbs
                  | Pstr_eval (e, _) -> scan_for_runs src e
                  | Pstr_module
                      {
                        pmb_expr = { pmod_desc = Pmod_structure inner; _ };
                        _;
                      } ->
                      items inner
                  | Pstr_recmodule mbs ->
                      List.iter
                        (fun (mb : Parsetree.module_binding) ->
                          match mb.pmb_expr.pmod_desc with
                          | Pmod_structure inner -> items inner
                          | _ -> ())
                        mbs
                  | _ -> ())
                str
            in
            items str
        | Source_file.Signature _ | Source_file.Syntax_error _ -> ()
      end)
    files;
  { violations = List.rev !violations; jobs = List.rev !jobs }
