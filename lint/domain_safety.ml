(* The domain-safety audit.

   Sweep fans experiment points over OCaml 5 domains; a worker closure
   that touches top-level mutable state races with its siblings.  The
   audit over-approximates in every direction so a clean report means
   something:

   1. Roots: any file whose token stream applies [Sweep.map] /
      [Sweep.map_timed] / [Sweep.map_span] / [Sweep.run] holds worker
      closures, so every module that file references (plus the file
      itself) is a root.  [Shard_pool.run] / [Shard_pool.create] /
      [Shard_pool.with_pool] call sites root the walk the same way:
      the SoA engine's intra-run shard jobs execute on pool domains
      exactly like Sweep's point closures, so everything they can
      reach joins the closure.  (The jobs' writes into their owned
      node-range slices of planes and staging buffers are the
      sanctioned pattern — per-call state threaded in by the engine,
      invisible to this top-level scan by construction.)
      [Scheduler.create] / [Scheduler.submit] / [Scheduler.shutdown]
      call sites are roots too: the serve daemon's job scheduler runs
      submitted work on its persistent worker domains, so the server,
      its request handlers, and every module a job can reach execute
      off the main domain exactly like Sweep workers.
   2. Reachability: module A depends on module B if B's name appears
      anywhere in A's token stream (constructors inflate this set —
      that is the safe direction).  The worker-reachable set is the
      transitive closure of the roots.
   3. Every reachable module is scanned for top-level mutable state:
      [ref]/[Hashtbl]/[Buffer]/[Queue]/[Stack]/[Bytes] creation,
      array creation or literals, [lazy] (forcing is racy), RNG state,
      and record literals mentioning a field some type in the tree
      declares [mutable].  Bindings under a [fun] are per-call values
      and skipped; [Atomic.t]/[Mutex.t]/[Condition.t] are the
      sanctioned primitives and pass.

   A hit is a violation unless annotated with a checked
   [(* dynlint: domain-safe — <reason> *)] waiver. *)

let sweep_fns = [ "map"; "map_timed"; "map_span"; "run" ]
let shard_pool_fns = [ "run"; "create"; "with_pool" ]
let scheduler_fns = [ "create"; "submit"; "shutdown" ]

(* {2 Mutable-creation classification} *)

let mutable_creator lid =
  match Rules.flatten lid with
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "a ref cell"
  | ("Hashtbl" | "Buffer" | "Queue" | "Stack" | "Bytes" | "Dynarray") :: f :: []
    when List.exists (String.equal f)
           [ "create"; "make"; "copy"; "of_seq"; "of_list"; "init" ] ->
      Some (List.hd (Rules.flatten lid) ^ "." ^ f)
  | [ "Array"; f ]
    when List.exists (String.equal f)
           [ "make"; "init"; "create_float"; "copy"; "of_list"; "make_matrix" ]
    ->
      Some ("Array." ^ f)
  | [ "Random"; "State"; "make" ]
  | [ "Random"; "State"; "make_self_init" ]
  | [ "Random"; "self_init" ]
  | [ "Rng"; "make" ]
  | [ "Dynet"; "Rng"; "make" ] ->
      Some "RNG state"
  (* Observability state: a span profiler's buffer and an Obs.Metrics
     registry are single-domain by contract (worker lanes are created
     with Span.worker inside the worker and absorbed after the join),
     so sharing one across Sweep workers from the top level races. *)
  | [ "Span"; ("create" | "worker") ] | [ "Obs"; "Span"; ("create" | "worker") ]
    ->
      Some "span-profiler lane (per-worker buffers; single-domain)"
  | [ "Metrics"; "create" ] | [ "Obs"; "Metrics"; "create" ] ->
      Some "Obs.Metrics registry (single-domain by design)"
  | _ -> None

(* Field names declared [mutable] by any type in the scanned tree. *)
let mutable_fields files =
  let fields = Hashtbl.create 32 in
  let iter =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun self td ->
          (match td.ptype_kind with
          | Ptype_record labels ->
              List.iter
                (fun (l : Parsetree.label_declaration) ->
                  match l.pld_mutable with
                  | Mutable -> Hashtbl.replace fields l.pld_name.txt ()
                  | Immutable -> ())
                labels
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration self td);
    }
  in
  List.iter
    (fun (src : Source_file.t) ->
      match src.parsed with
      | Source_file.Structure str -> iter.structure iter str
      | Source_file.Signature sg -> iter.signature iter sg
      | Source_file.Syntax_error _ -> ())
    files;
  fields

(* {2 Scanning one module's top-level bindings} *)

(* Walk an expression bound at top level and report every
   mutable-state creation not delayed behind a [fun]. *)
let scan_binding ~mut_fields ~add expr =
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ ->
              () (* created per call, not shared *)
          | Pexp_lazy _ ->
              add e.pexp_loc
                "top-level lazy (forcing from two domains races)"
          | Pexp_array _ ->
              add e.pexp_loc "top-level array literal (arrays are mutable)";
              Ast_iterator.default_iterator.expr self e
          | Pexp_record (fields, _)
            when List.exists
                   (fun ((lid : Longident.t Location.loc), _) ->
                     match List.rev (Rules.flatten lid.txt) with
                     | f :: _ -> Hashtbl.mem mut_fields f
                     | [] -> false)
                   fields ->
              add e.pexp_loc "top-level record with mutable fields";
              Ast_iterator.default_iterator.expr self e
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
              match mutable_creator txt with
              | Some what ->
                  add e.pexp_loc ("top-level " ^ what);
                  Ast_iterator.default_iterator.expr self e
              | None -> Ast_iterator.default_iterator.expr self e)
          | _ -> Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.expr iter expr

let scan_module ~mut_fields (src : Source_file.t) =
  let out = ref [] in
  match src.parsed with
  | Source_file.Signature _ | Source_file.Syntax_error _ -> []
  | Source_file.Structure str ->
      let add loc what =
        out :=
          Rules.violation src loc "domain-safety"
            (Printf.sprintf
               "%s in a module reachable from Sweep workers; make it \
                per-call, use Atomic, or waive with (* dynlint: \
                domain-safe \xe2\x80\x94 <reason> *)"
               what)
          :: !out
      in
      let rec scan_items items =
        List.iter
          (fun (item : Parsetree.structure_item) ->
            match item.pstr_desc with
            | Pstr_value (_, bindings) ->
                List.iter
                  (fun (vb : Parsetree.value_binding) ->
                    scan_binding ~mut_fields ~add vb.pvb_expr)
                  bindings
            | Pstr_module
                { pmb_expr = { pmod_desc = Pmod_structure inner; _ }; _ } ->
                scan_items inner
            | Pstr_recmodule mbs ->
                List.iter
                  (fun (mb : Parsetree.module_binding) ->
                    match mb.pmb_expr.pmod_desc with
                    | Pmod_structure inner -> scan_items inner
                    | _ -> ())
                  mbs
            | _ -> ())
          items
      in
      scan_items str;
      List.rev !out

(* {2 Reachability} *)

let check ~(files : Source_file.t list) =
  let ml_files =
    List.filter (fun (s : Source_file.t) -> s.kind = Source_file.Ml) files
  in
  (* Module name -> files defining it (names can repeat across
     libraries, e.g. Stats; reachability keeps them all). *)
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun (s : Source_file.t) ->
      Hashtbl.add by_name (Source_file.module_name s.id) s)
    ml_files;
  let roots =
    List.filter
      (fun s ->
        Source_file.calls s ~modname:"Sweep" ~fns:sweep_fns
        || Source_file.calls s ~modname:"Shard_pool" ~fns:shard_pool_fns
        || Source_file.calls s ~modname:"Scheduler" ~fns:scheduler_fns)
      ml_files
  in
  let reachable : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let visit (s : Source_file.t) =
    if not (Hashtbl.mem reachable s.id) then begin
      Hashtbl.replace reachable s.id ();
      Queue.add s queue
    end
  in
  List.iter visit roots;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Hashtbl.iter
      (fun name () -> List.iter visit (Hashtbl.find_all by_name name))
      s.uidents
  done;
  let mut_fields = mutable_fields files in
  let violations =
    List.concat_map
      (fun (s : Source_file.t) ->
        if Hashtbl.mem reachable s.id then scan_module ~mut_fields s else [])
      ml_files
  in
  let reachable_ids =
    Hashtbl.fold (fun id () acc -> id :: acc) reachable []
    |> List.sort String.compare
  in
  (violations, reachable_ids)
