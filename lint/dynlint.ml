(* dynlint — project-specific static analysis for the dynspread tree.

   Usage: dynlint [--report FILE] DIR...

   Walks every .ml/.mli under the given directories, enforces the
   project rules (see lint/rules.ml for the rule table and DESIGN.md
   "Static analysis" for the rationale), and exits nonzero when any
   violation survives the waiver pass.  --report writes a JSON summary
   (schema dynlint/v1) with the violation list and the
   Sweep-reachability set. *)

let usage () =
  prerr_endline "usage: dynlint [--report FILE] DIR...";
  prerr_endline "  DIR...         directories to scan (e.g. lib bin bench test)";
  prerr_endline "  --report FILE  also write a JSON report to FILE";
  exit 2

let () =
  let report_file = ref None in
  let dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--report" :: file :: rest ->
        report_file := Some file;
        parse rest
    | [ "--report" ] -> usage ()
    | ("--help" | "-h") :: _ -> usage ()
    | dir :: rest ->
        if not (Sys.file_exists dir && Sys.is_directory dir) then begin
          Printf.eprintf "dynlint: %s is not a directory\n" dir;
          exit 2
        end;
        dirs := dir :: !dirs;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !dirs = [] then usage ();
  let report = Lintcore.Driver.run (List.rev !dirs) in
  (match !report_file with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Lintcore.Driver.report_to_json report)));
  List.iter
    (fun v -> Format.printf "%a@." Lintcore.Driver.pp_violation v)
    report.Lintcore.Driver.violations;
  match report.Lintcore.Driver.violations with
  | [] ->
      Format.printf "dynlint: %d files clean (%d modules sweep-reachable)@."
        report.Lintcore.Driver.files_scanned
        (List.length report.Lintcore.Driver.sweep_reachable);
      exit 0
  | vs ->
      Format.printf "dynlint: %d violation%s in %d files scanned@."
        (List.length vs)
        (if List.length vs = 1 then "" else "s")
        report.Lintcore.Driver.files_scanned;
      exit 1
