(* dynlint — project-specific static analysis for the dynspread tree.

   Usage: dynlint [--report FILE] [--sarif FILE] DIR...

   Walks every .ml/.mli under the given directories, enforces the
   project rules (see lint/rules.ml for the rule table and DESIGN.md
   "Static analysis" for the rationale), and exits nonzero when any
   violation survives the waiver pass.  --report writes a JSON summary
   (schema dynlint/v2) with the violation list, per-finding rule id
   and severity, the hot-path/unsafe-audit statistics, and the
   Sweep-reachability set; --sarif writes the same findings as SARIF
   2.1.0 for CI artifact upload. *)

let usage () =
  prerr_endline "usage: dynlint [--report FILE] [--sarif FILE] DIR...";
  prerr_endline "  DIR...         directories to scan (e.g. lib bin bench test)";
  prerr_endline "  --report FILE  also write a JSON report to FILE";
  prerr_endline "  --sarif FILE   also write a SARIF 2.1.0 report to FILE";
  exit 2

let () =
  let report_file = ref None in
  let sarif_file = ref None in
  let dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--report" :: file :: rest ->
        report_file := Some file;
        parse rest
    | "--sarif" :: file :: rest ->
        sarif_file := Some file;
        parse rest
    | [ "--report" ] | [ "--sarif" ] -> usage ()
    | ("--help" | "-h") :: _ -> usage ()
    | dir :: rest ->
        if not (Sys.file_exists dir && Sys.is_directory dir) then begin
          Printf.eprintf "dynlint: %s is not a directory\n" dir;
          exit 2
        end;
        dirs := dir :: !dirs;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !dirs = [] then usage ();
  let report = Lintcore.Driver.run (List.rev !dirs) in
  let write file contents =
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents)
  in
  Option.iter
    (fun file -> write file (Lintcore.Driver.report_to_json report))
    !report_file;
  Option.iter
    (fun file -> write file (Lintcore.Sarif.of_report report))
    !sarif_file;
  List.iter
    (fun v -> Format.printf "%a@." Lintcore.Driver.pp_violation v)
    report.Lintcore.Driver.violations;
  let stats = report.Lintcore.Driver.stats in
  match report.Lintcore.Driver.violations with
  | [] ->
      Format.printf
        "dynlint: %d files clean (%d hot roots, %d/%d unsafe sites \
         guarded, %d waived, %d shard jobs, %d modules sweep-reachable)@."
        report.Lintcore.Driver.files_scanned stats.Lintcore.Driver.hot_roots
        stats.Lintcore.Driver.unsafe_guarded stats.Lintcore.Driver.unsafe_sites
        stats.Lintcore.Driver.unsafe_waived
        (List.length stats.Lintcore.Driver.shard_jobs)
        (List.length report.Lintcore.Driver.sweep_reachable);
      exit 0
  | vs ->
      Format.printf "dynlint: %d violation%s in %d files scanned@."
        (List.length vs)
        (if List.length vs = 1 then "" else "s")
        report.Lintcore.Driver.files_scanned;
      exit 1
