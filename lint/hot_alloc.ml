(* hot-alloc: functions marked [@@dynlint.hot] and everything they
   transitively call must contain no allocation site.

   The engine's n = 10^5..10^6 targets depend on the round loop staying
   off the minor heap; one Gc.minor_words test asserts that end to end,
   and this pass explains *why* it holds, function by function, at
   compile time.  Flagged as allocations:

     - tuples, records, arrays, constructors and polymorphic variants
       with payloads, lazy values, objects, first-class modules
     - closures: [fun]/[function] values and local function definitions
       that capture an enclosing local (capture-free definitions become
       constant closures and are skipped, matching the compiler)
     - [ref] cells, unless every use of the bound name is a same-level
       [!]/[:=]/[incr]/[decr] (mirroring the compiler's eliminate_ref:
       such a ref is compiled as a mutable variable)
     - partial applications of known functions (closure at runtime)
     - boxed arithmetic: float operators, [float_of_int], and anything
       under [Int64]/[Int32]/[Nativeint]/[Float]
     - allocating externals: [^], [@], [Printf]/[Format], and the
       stdlib constructors/producers table below

   Subtrees under [raise]/[raise_notrace]/[invalid_arg]/[failwith] and
   [assert] are cold paths (they run at most once, on the way out) and
   are skipped, so bounds-check guards keep their helpful messages.

   [@dynlint.alloc_ok "reason"] on a function binding waives the whole
   function: the traversal stops there and the callee may allocate
   (e.g. Plane.extract_row's detaching copy on the learning path).  On
   a narrower construct it waives findings on the covered lines only;
   both forms are stale-checked. *)

let rule = "hot-alloc"

let is_cold_head = function
  | [ f ] | [ "Stdlib"; f ] -> (
      match f with
      | "raise" | "raise_notrace" | "invalid_arg" | "failwith" -> true
      | _ -> false)
  | _ -> false

let is_float_op = function
  | "+." | "-." | "*." | "/." | "**" | "~-." | "abs_float" | "mod_float"
  | "sqrt" | "float_of_int" | "float" | "float_of_string" ->
      true
  | _ -> false

let is_string_producer = function
  | "string_of_int" | "string_of_float" | "string_of_bool"
  | "format_of_string" ->
      true
  | _ -> false

(* Modules where (conservatively) every call allocates. *)
let allocating_modules =
  [
    "Printf"; "Format"; "Scanf"; "Int64"; "Int32"; "Nativeint"; "Float";
    "Complex"; "Seq"; "Lazy"; "Digest"; "Marshal"; "Random";
  ]

(* Per-module allocating producers in modules that also export
   non-allocating operations. *)
let allocating_fns =
  [
    ( "Array",
      [
        "make"; "init"; "create_float"; "make_matrix"; "append"; "concat";
        "sub"; "copy"; "of_list"; "to_list"; "of_seq"; "to_seq"; "map";
        "mapi"; "map2"; "split"; "combine";
      ] );
    ( "List",
      [
        "init"; "cons"; "map"; "mapi"; "rev_map"; "filter"; "filter_map";
        "concat"; "concat_map"; "flatten"; "append"; "rev"; "rev_append";
        "sort"; "stable_sort"; "fast_sort"; "sort_uniq"; "merge"; "split";
        "combine"; "partition"; "of_seq"; "to_seq";
      ] );
    ( "String",
      [
        "make"; "init"; "sub"; "concat"; "cat"; "map"; "mapi"; "trim";
        "escaped"; "uppercase_ascii"; "lowercase_ascii"; "capitalize_ascii";
        "uncapitalize_ascii"; "split_on_char"; "of_seq"; "to_seq";
      ] );
    ( "Bytes",
      [
        "create"; "make"; "init"; "copy"; "of_string"; "to_string"; "sub";
        "extend"; "cat"; "concat";
      ] );
    ("Buffer", [ "create"; "contents"; "to_bytes"; "sub" ]);
    ("Hashtbl", [ "create"; "copy"; "add"; "replace"; "fold"; "to_seq" ]);
    ("Queue", [ "create"; "add"; "push"; "copy"; "to_seq" ]);
    ("Stack", [ "create"; "push"; "copy"; "to_seq" ]);
    ("Option", [ "some"; "map"; "bind"; "join"; "to_list"; "to_seq" ]);
    ("Result", [ "ok"; "error"; "map"; "bind"; "join" ]);
    ("Atomic", [ "make" ]);
    ("Domain", [ "spawn" ]);
  ]

let classify_external path =
  match path with
  | [ f ] | [ "Stdlib"; f ] ->
      if is_float_op f then Some (f ^ " boxes a float")
      else if is_string_producer f then Some (f ^ " allocates a string")
      else if String.equal f "^" then Some "string concatenation (^) allocates"
      else if String.equal f "@" then Some "list append (@) allocates"
      else if String.equal f "^^" then
        Some "format concatenation (^^) allocates"
      else None
  | _ -> (
      match List.rev path with
      | f :: m :: _ ->
          if List.mem m allocating_modules then
            Some (m ^ "." ^ f ^ " allocates")
          else (
            match List.assoc_opt m allocating_fns with
            | Some fns when List.mem f fns -> Some (m ^ "." ^ f ^ " allocates")
            | _ -> None)
      | _ -> None)

(* {2 eliminate_ref prepass}

   Collect [let x = ref e] bindings whose every use is a same-level
   [!x] / [x := _] / [incr x] / [decr x]; those refs are compiled as
   mutable variables (no allocation).  A use at a deeper lambda level
   crosses a closure boundary (the ref would live in the closure
   environment), so it disqualifies. *)

let deref_heads = [ "!"; ":="; "incr"; "decr" ]

let loc_key (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum)

let collect_ok_refs (fn : Callgraph.func) =
  let cands = Hashtbl.create 8 in
  (* name -> (loc key of the [ref] application, binding lambda depth,
     escaped flag) *)
  let rec go depth (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_let (_, vbs, cont) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            match (vb.pvb_pat.ppat_desc, Callgraph.flatten_apply vb.pvb_expr) with
            | ( Ppat_var v,
                ( { pexp_desc = Pexp_ident { txt = Longident.Lident "ref"; _ };
                    _;
                  },
                  [ (Asttypes.Nolabel, arg) ] ) ) ->
                Hashtbl.replace cands v.txt
                  (loc_key vb.pvb_expr.pexp_loc, depth, ref false);
                go depth arg
            | _ -> go depth vb.pvb_expr)
          vbs;
        go depth cont
    | Pexp_ident { txt = Longident.Lident x; _ } -> (
        match Hashtbl.find_opt cands x with
        | Some (_, _, esc) -> esc := true
        | None -> ())
    | Pexp_apply _ -> (
        let head, args = Callgraph.flatten_apply e in
        match (head.pexp_desc, args) with
        | ( Pexp_ident { txt = Longident.Lident op; _ },
            ( Asttypes.Nolabel,
              { pexp_desc = Pexp_ident { txt = Longident.Lident x; _ }; _ } )
            :: rest )
          when List.mem op deref_heads ->
            (match Hashtbl.find_opt cands x with
            | Some (_, d, esc) -> if d <> depth then esc := true
            | None -> ());
            List.iter (fun (_, a) -> go depth a) rest
        | _ ->
            go depth head;
            List.iter (fun (_, a) -> go depth a) args)
    | Pexp_fun (_, d, _, body) ->
        Option.iter (go depth) d;
        go (depth + 1) body
    | Pexp_function cases ->
        List.iter
          (fun (c : Parsetree.case) ->
            Option.iter (go (depth + 1)) c.pc_guard;
            go (depth + 1) c.pc_rhs)
          cases
    | Pexp_newtype (_, body) -> go depth body
    | _ ->
        Ast_iterator.default_iterator.expr
          { Ast_iterator.default_iterator with expr = (fun _ e' -> go depth e') }
          e
  in
  (match fn.Callgraph.cases with
  | Some cs ->
      List.iter
        (fun (c : Parsetree.case) ->
          Option.iter (go 0) c.pc_guard;
          go 0 c.pc_rhs)
        cs
  | None -> go 0 fn.Callgraph.body);
  let ok = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ (key, _, esc) -> if not !esc then Hashtbl.replace ok key ())
    cands;
  ok

(* {2 Capture analysis}

   Names from [env] (enclosing locals) referenced free in [e]: a
   function value capturing any of them cannot be a constant closure
   and therefore allocates. *)

let captured ~env (e : Parsetree.expression) =
  let hits = ref [] in
  let rec go bound (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } ->
        if List.mem x env && (not (List.mem x bound)) && not (List.mem x !hits)
        then hits := x :: !hits
    | Pexp_fun (_, d, p, body) ->
        Option.iter (go bound) d;
        go (Callgraph.pat_vars p bound) body
    | Pexp_function cases -> List.iter (case bound) cases
    | Pexp_newtype (_, body) -> go bound body
    | Pexp_let (rf, vbs, cont) ->
        let bound' =
          List.fold_left
            (fun a (vb : Parsetree.value_binding) ->
              Callgraph.pat_vars vb.pvb_pat a)
            bound vbs
        in
        let inner =
          match rf with Asttypes.Recursive -> bound' | _ -> bound
        in
        List.iter
          (fun (vb : Parsetree.value_binding) -> go inner vb.pvb_expr)
          vbs;
        go bound' cont
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        go bound scrut;
        List.iter (case bound) cases
    | Pexp_for (p, lo, hi, _, body) ->
        go bound lo;
        go bound hi;
        go (Callgraph.pat_vars p bound) body
    | _ ->
        Ast_iterator.default_iterator.expr
          { Ast_iterator.default_iterator with expr = (fun _ e' -> go bound e') }
          e
  and case bound (c : Parsetree.case) =
    let b = Callgraph.pat_vars c.pc_lhs bound in
    Option.iter (go b) c.pc_guard;
    go b c.pc_rhs
  in
  go [] e;
  List.rev !hits

(* {2 The transitive scan} *)

let func_key (f : Callgraph.func) =
  f.Callgraph.src.Source_file.id ^ ":" ^ f.Callgraph.name

(* An alloc_ok waiver whose span covers the function's binding waives
   the whole function: traversal stops there. *)
let func_waiver (cg : Callgraph.t) (f : Callgraph.func) =
  let line = f.Callgraph.loc.loc_start.pos_lnum in
  List.find_opt
    (fun (w : Callgraph.waiver) ->
      String.equal w.rule rule
      && String.equal w.w_id f.Callgraph.src.Source_file.id
      && line >= w.span_start && line <= w.span_end)
    cg.Callgraph.waivers

let scan cg (fn : Callgraph.func)
    ~(report : Location.t -> string -> unit)
    ~(enqueue : Callgraph.func -> unit) =
  let ok_refs = collect_ok_refs fn in
  let resolve lid ~env =
    match lid with
    | Longident.Lident x when List.mem x env -> [] (* shadowed by a local *)
    | _ -> Callgraph.resolve cg ~from:fn lid
  in
  let rec go env (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> List.iter enqueue (resolve txt ~env)
    | Pexp_apply _ -> (
        let head, args = Callgraph.flatten_apply e in
        match head.pexp_desc with
        | Pexp_ident { txt; loc = hloc } ->
            let path = Callgraph.flatten txt in
            if is_cold_head path then () (* error path: cold, skip *)
            else begin
              (match path with
              | [ "ref" ] | [ "Stdlib"; "ref" ] ->
                  if not (Hashtbl.mem ok_refs (loc_key e.pexp_loc)) then
                    report e.pexp_loc
                      "ref allocates (the cell escapes or crosses a closure \
                       boundary, so eliminate_ref cannot remove it)"
              | _ -> (
                  match classify_external path with
                  | Some what -> report hloc what
                  | None -> ()));
              let resolved = resolve txt ~env in
              List.iter enqueue resolved;
              (match resolved with
              | [] -> ()
              | fs ->
                  let provided =
                    List.length
                      (List.filter
                         (fun (l, _) ->
                           match l with
                           | Asttypes.Nolabel | Asttypes.Labelled _ -> true
                           | Asttypes.Optional _ -> false)
                         args)
                  in
                  if
                    List.for_all
                      (fun (f : Callgraph.func) -> f.Callgraph.arity > provided)
                      fs
                  then
                    report e.pexp_loc
                      (Printf.sprintf
                         "partial application of %s allocates a closure"
                         (String.concat "." path)));
              List.iter (fun (_, a) -> go env a) args
            end
        | _ ->
            go env head;
            List.iter (fun (_, a) -> go env a) args)
    | Pexp_tuple _ ->
        report e.pexp_loc "tuple allocates";
        descend env e
    | Pexp_record _ ->
        report e.pexp_loc "record allocates";
        descend env e
    | Pexp_construct (lid, Some arg) ->
        report e.pexp_loc
          (Printf.sprintf "constructor %s with a payload allocates"
             (String.concat "." (Callgraph.flatten lid.txt)));
        (* A multi-argument constructor is one block: its payload
           tuple is part of this allocation, not a second one. *)
        (match arg.pexp_desc with
        | Pexp_tuple parts -> List.iter (go env) parts
        | _ -> go env arg)
    | Pexp_variant (_, Some _) ->
        report e.pexp_loc "polymorphic variant with a payload allocates";
        descend env e
    | Pexp_array _ ->
        report e.pexp_loc "array literal allocates";
        descend env e
    | Pexp_lazy _ ->
        report e.pexp_loc "lazy value allocates";
        descend env e
    | Pexp_object _ -> report e.pexp_loc "object allocates"
    | Pexp_pack _ -> report e.pexp_loc "first-class module allocates"
    | Pexp_letop _ ->
        report e.pexp_loc "binding operator expands to closure allocations";
        descend env e
    | Pexp_assert _ -> () (* cold like raise *)
    | Pexp_let (_, vbs, cont) ->
        let group =
          List.concat_map
            (fun (vb : Parsetree.value_binding) ->
              Callgraph.pat_vars vb.pvb_pat [])
            vbs
        in
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            match Callgraph.nested_func cg fn.Callgraph.src vb with
            | Some nf -> (
                (* A separate node, scanned if called.  Its *definition*
                   allocates here unless it is a constant closure. *)
                let cap_env =
                  List.filter (fun v -> not (List.mem v group)) env
                in
                match captured ~env:cap_env vb.pvb_expr with
                | [] -> ()
                | vs ->
                    report vb.pvb_loc
                      (Printf.sprintf
                         "local function %s captures %s: closure allocation"
                         (Callgraph.last_segment nf.Callgraph.name)
                         (String.concat ", " vs)))
            | None -> go env vb.pvb_expr)
          vbs;
        go (group @ env) cont
    | Pexp_fun _ | Pexp_function _ -> (
        (match captured ~env e with
        | [] -> ()
        | vs ->
            report e.pexp_loc
              (Printf.sprintf "closure capturing %s allocates"
                 (String.concat ", " vs)));
        match e.pexp_desc with
        | Pexp_fun (_, d, p, body) ->
            Option.iter (go env) d;
            go (Callgraph.pat_vars p env) body
        | Pexp_function cases ->
            List.iter
              (fun (c : Parsetree.case) ->
                let env' = Callgraph.pat_vars c.pc_lhs env in
                Option.iter (go env') c.pc_guard;
                go env' c.pc_rhs)
              cases
        | _ -> ())
    | Pexp_newtype (_, body) -> go env body
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        go env scrut;
        List.iter
          (fun (c : Parsetree.case) ->
            let env' = Callgraph.pat_vars c.pc_lhs env in
            Option.iter (go env') c.pc_guard;
            go env' c.pc_rhs)
          cases
    | Pexp_for (p, lo, hi, _, body) ->
        go env lo;
        go env hi;
        go (Callgraph.pat_vars p env) body
    | _ -> descend env e
  and descend env e =
    Ast_iterator.default_iterator.expr
      { Ast_iterator.default_iterator with expr = (fun _ e' -> go env e') }
      e
  in
  let env0 = List.filter_map (fun (_, n) -> n) fn.Callgraph.params in
  match fn.Callgraph.cases with
  | Some cs ->
      List.iter
        (fun (c : Parsetree.case) ->
          let env' = Callgraph.pat_vars c.pc_lhs env0 in
          Option.iter (go env') c.pc_guard;
          go env' c.pc_rhs)
        cs
  | None -> go env0 fn.Callgraph.body

let check (cg : Callgraph.t) : Rules.violation list =
  let out = ref [] in
  let visited = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun (f : Callgraph.func) -> Queue.add (f, f) queue)
    (Callgraph.hot_roots cg);
  while not (Queue.is_empty queue) do
    let fn, root = Queue.pop queue in
    let key = func_key fn in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      match func_waiver cg fn with
      | Some w -> w.Callgraph.used <- true (* whole function waived *)
      | None ->
          let report loc what =
            let msg =
              if String.equal (func_key fn) (func_key root) then
                Printf.sprintf "%s in hot function %s" what fn.Callgraph.qname
              else
                Printf.sprintf "%s in %s (hot path from %s)" what
                  fn.Callgraph.qname root.Callgraph.qname
            in
            out := Rules.violation fn.Callgraph.src loc rule msg :: !out
          in
          scan cg fn ~report ~enqueue:(fun callee ->
              Queue.add (callee, root) queue)
    end
  done;
  List.rev !out
