(* The full benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (DESIGN.md experiments E1-E9); each printed table carries its own
   shape checks in the footnotes.

   Part 2 runs one Bechamel micro-benchmark per experiment, measuring
   the wall-clock cost of that experiment's core simulation workload
   (useful for tracking simulator performance regressions).

   Run with: dune exec bench/main.exe
   Pass --tables-only or --bechamel-only to run half of it.  Either
   way a machine-readable summary (micro-benchmark ns/run and, when
   the tables ran, per-experiment wall-clock) is written to
   BENCH_results.json (override with --out FILE).

   --compare BASELINE.json diffs the fresh summary against a committed
   one (Analysis.Baseline) under --tolerance PCT and exits 1 on any
   regression — the CI perf gate.  --profile-dir DIR re-runs the sweep
   experiments (E1/E4/E7) with an active span profiler and writes one
   Chrome trace-event file per experiment; the profiled pass is
   separate so the timings in the summary stay unprofiled. *)

open Bechamel
open Toolkit
open Dynet.Ops

let seed = 42

let print_table t = Obs.Console.out (Analysis.Table.render t)

(* {2 Part 1: the paper's tables and figures} *)

let run_tables ~jobs ~metrics () =
  Obs.Console.out "=== Part 1: paper artifacts (DESIGN.md experiment index) ===";
  Obs.Console.out "";
  List.iter print_table
    (Analysis.Experiments.all ~jobs ~metrics ~seed ());
  (* E17 lives in the scenario library (it exercises the importer and
     replayer), so it joins the sequence here rather than in
     Analysis.Experiments. *)
  print_table (Scenario.Experiment.real_trace ~jobs ~metrics ~seed ())

(* {2 Part 2: Bechamel micro-benchmarks, one per experiment} *)

let instance_ms ~n ~k ~s ~seed =
  Gossip.Instance.multi_source ~rng:(Dynet.Rng.make ~seed) ~n ~k ~s

let bench_e1_table1 () =
  (* E1's unit of work: one Algorithm-2 run on a many-source instance. *)
  let n = 16 and k = 24 in
  let instance = instance_ms ~n ~k ~s:n ~seed in
  fun () ->
    let schedule = Adversary.Oblivious.fresh_random ~seed ~n ~p:0.25 in
    let r =
      Gossip.Runners.oblivious_rw ~instance ~schedule ~seed ~const_f:0.05
        ~force_rw:true ()
    in
    assert r.Gossip.Oblivious_rw.completed

let bench_e2_lower_bound () =
  let n = 12 in
  let instance = Gossip.Instance.one_per_node ~n in
  fun () ->
    let r, _, _ =
      Gossip.Runners.flooding_vs_lower_bound ~instance ~seed ()
    in
    assert r.Engine.Run_result.completed

let bench_e3_free_edges () =
  let n = 64 and k = 64 in
  let lb =
    Adversary.Broadcast_lb.create ~rng:(Dynet.Rng.make ~seed) ~n ~k
  in
  let chosen =
    Array.init n (fun v -> if v mod 2 = 0 then Some (v mod k) else None)
  in
  fun () ->
    ignore
      (Adversary.Broadcast_lb.next_graph lb
         { Adversary.Broadcast_lb.knows = (fun v i -> i = v mod k); chosen })

let bench_e4_single_source () =
  let n = 16 and k = 32 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  fun () ->
    let env =
      Gossip.Runners.Oblivious
        (Adversary.Schedule.stabilized ~sigma:3
           (Adversary.Oblivious.tree_rotator ~seed ~n))
    in
    let r, _ = Gossip.Runners.single_source ~instance ~env () in
    assert r.Engine.Run_result.completed

let bench_e6_multi_source () =
  let n = 16 and k = 32 in
  let instance = instance_ms ~n ~k ~s:6 ~seed in
  fun () ->
    let env =
      Gossip.Runners.Oblivious
        (Adversary.Schedule.stabilized ~sigma:3
           (Adversary.Oblivious.tree_rotator ~seed ~n))
    in
    let r, _ = Gossip.Runners.multi_source ~instance ~env () in
    assert r.Engine.Run_result.completed

let bench_e7_rw_phase () =
  let n = 20 and k = 20 in
  let instance = instance_ms ~n ~k ~s:10 ~seed in
  let centers = Array.init n (fun v -> v mod 7 = 0) in
  fun () ->
    let schedule = Adversary.Oblivious.fresh_random ~seed ~n ~p:0.3 in
    let states = Gossip.Rw_phase.init ~instance ~centers ~gamma:1000. ~seed in
    let r, _ =
      Engine.Runner_unicast.run Gossip.Rw_phase.protocol ~states
        ~adversary:(Adversary.Schedule.unicast schedule)
        ~max_rounds:5000 ~stop:Gossip.Rw_phase.settled ()
    in
    assert r.Engine.Run_result.completed

let bench_e8_static_baseline () =
  let n = 64 and k = 256 in
  let graph =
    Dynet.Graph_gen.random_connected (Dynet.Rng.make ~seed) ~n ~p:0.2
  in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  fun () -> ignore (Gossip.Spanning_tree_static.run ~graph ~instance ~root:0)

let bench_e9_flooding () =
  let n = 16 in
  let instance = Gossip.Instance.one_per_node ~n in
  fun () ->
    let schedule = Adversary.Oblivious.fresh_random ~seed ~n ~p:0.25 in
    let r, _ = Gossip.Runners.flooding ~instance ~schedule () in
    assert r.Engine.Run_result.completed

let bench_e10_ablation () =
  let n = 12 and k = 16 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  fun () ->
    let env =
      Gossip.Runners.Request_cutting { seed; cut_prob = 0.5 }
    in
    let config =
      { Gossip.Single_source.priority = Gossip.Single_source.Paper_priority;
        dedup_pending = false }
    in
    let r, _ = Gossip.Runners.single_source ~instance ~env ~config () in
    assert r.Engine.Run_result.completed

let bench_e11_tradeoff () =
  let n = 16 and k = 24 in
  let instance = instance_ms ~n ~k ~s:n ~seed in
  fun () ->
    let schedule = Adversary.Oblivious.fresh_random ~seed ~n ~p:0.3 in
    let r =
      Gossip.Runners.oblivious_rw ~instance ~schedule ~seed ~const_f:0.3
        ~force_rw:true ()
    in
    assert r.Gossip.Oblivious_rw.completed

let bench_e12_coding () =
  let n = 16 in
  let instance = Gossip.Instance.one_per_node ~n in
  fun () ->
    let schedule = Adversary.Oblivious.fresh_random ~seed ~n ~p:0.25 in
    let r, _ = Gossip.Runners.coded_broadcast ~instance ~schedule ~seed () in
    assert r.Engine.Run_result.completed

let bench_e13_leader () =
  let n = 24 in
  fun () ->
    let env =
      Gossip.Runners.Oblivious (Adversary.Oblivious.tree_rotator ~seed ~n)
    in
    let r, _ = Gossip.Runners.leader_election ~n ~env () in
    assert r.Engine.Run_result.completed

let bench_e15_fault_none_overhead () =
  (* The null fault plan must cost (almost) nothing: the exact e4
     workload with [Faults.Plan.none] passed explicitly — compare the
     two entries to see what the fault layer's identity path costs. *)
  let n = 16 and k = 32 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  fun () ->
    let env =
      Gossip.Runners.Oblivious
        (Adversary.Schedule.stabilized ~sigma:3
           (Adversary.Oblivious.tree_rotator ~seed ~n))
    in
    let r, _ =
      Gossip.Runners.single_source ~instance ~env ~faults:Faults.Plan.none ()
    in
    assert r.Engine.Run_result.completed

let bench_e15_reliable_under_loss () =
  let n = 12 and k = 12 in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let faults = Faults.Plan.make ~loss:0.2 ~seed () in
  fun () ->
    let env =
      Gossip.Runners.Oblivious
        (Adversary.Schedule.stabilized ~sigma:3
           (Adversary.Oblivious.tree_rotator ~seed ~n))
    in
    let r, _, _ =
      Gossip.Runners.reliable_single_source ~instance ~env ~faults ()
    in
    assert r.Engine.Run_result.completed

let bench_e17_real_trace () =
  (* E17's unit of work: Multi-Source-Unicast over the imported
     office-contact trace, replayed with Loop semantics (import cost is
     paid once, outside the measured thunk). *)
  let trace =
    match Scenario.Contacts.import Scenario.Experiment.sample_contacts with
    | Ok (trace, _) -> trace
    | Error e -> failwith e
  in
  let n = trace.Scenario.Trace_io.header.n in
  let instance = instance_ms ~n ~k:n ~s:4 ~seed:(seed + 1) in
  fun () ->
    let env =
      Gossip.Runners.Oblivious
        (Scenario.Replay.schedule ~past_end:Scenario.Replay.Loop trace)
    in
    let r, _ = Gossip.Runners.multi_source ~instance ~env () in
    assert r.Engine.Run_result.completed

(* {2 E18: the mega-scale SoA engine} *)

(* Rounds per thunk for the per-round e18 entries: enough to amortize
   engine setup (plane fill, CSR build, domain pool) into noise, few
   enough that one thunk still fits the sampling quota. *)
let mega_rounds = 64

let bench_e18_mega ~n ~shards ~max_rounds () =
  (* The tentpole's budget line: phased flooding at n = 10^5 on the SoA
     engine.  Graph, instance and protocol states are built once
     outside the thunk, so each run pays engine setup (plane fill + CSR
     build, plus the domain pool when sharded) and [max_rounds] rounds
     of the hot loop. *)
  let k = 32 in
  let graph =
    Dynet.Graph_gen.random_regularish (Dynet.Rng.make ~seed) ~n ~d:8
  in
  let instance = Gossip.Instance.single_source ~n ~k ~source:0 in
  let states = Gossip.Flooding.init ~instance ~phase_len:4 () in
  let adversary ~round:_ ~prev:_ ~states:_ ~intents:_ = graph in
  let module E = (val Engine.Soa.engine ~shards () : Engine.Engine_sig.ENGINE)
  in
  fun () ->
    (* The engine restates nodes in place; run on a copy so every
       sample replays the same rounds instead of a saturated residue
       of the previous one. *)
    let r, _ =
      E.Broadcast.run Gossip.Flooding.protocol ~states:(Array.copy states)
        ~adversary ~max_rounds
        ~stop:(fun _ -> false)
        ()
    in
    assert (r.Engine.Run_result.rounds = max_rounds)

let bench_e14_weak_adversary () =
  let n = 48 in
  let adv = Adversary.Weak_bcast.make ~seed ~n in
  let states = Array.make n () in
  let intents = Array.init n (fun v -> if v mod 2 = 0 then Some v else None) in
  fun () ->
    ignore
      (adv ~round:1 ~prev:(Dynet.Graph.empty ~n) ~states ~intents)

let tests ~shards =
  Test.make_grouped ~name:"dynspread"
    [
      Test.make ~name:"e1/table1:oblivious-rw" (Staged.stage (bench_e1_table1 ()));
      Test.make ~name:"e2/lower-bound:flooding-vs-lb"
        (Staged.stage (bench_e2_lower_bound ()));
      Test.make ~name:"e3/free-edges:next-graph"
        (Staged.stage (bench_e3_free_edges ()));
      Test.make ~name:"e4/single-source:rotator"
        (Staged.stage (bench_e4_single_source ()));
      Test.make ~name:"e6/multi-source:rotator"
        (Staged.stage (bench_e6_multi_source ()));
      Test.make ~name:"e7/rw-phase:gather" (Staged.stage (bench_e7_rw_phase ()));
      Test.make ~name:"e8/static-baseline:tree"
        (Staged.stage (bench_e8_static_baseline ()));
      Test.make ~name:"e9/flooding:fresh-random"
        (Staged.stage (bench_e9_flooding ()));
      Test.make ~name:"e10/ablation:no-dedup-cutter"
        (Staged.stage (bench_e10_ablation ()));
      Test.make ~name:"e11/rw-tradeoff:dense-centers"
        (Staged.stage (bench_e11_tradeoff ()));
      Test.make ~name:"e12/coding-gap:coded-bcast"
        (Staged.stage (bench_e12_coding ()));
      Test.make ~name:"e13/leader-election:rotator"
        (Staged.stage (bench_e13_leader ()));
      Test.make ~name:"e14/adaptivity:weak-round"
        (Staged.stage (bench_e14_weak_adversary ()));
      Test.make ~name:"e15/faults:none-overhead"
        (Staged.stage (bench_e15_fault_none_overhead ()));
      Test.make ~name:"e15/faults:reliable-loss20"
        (Staged.stage (bench_e15_reliable_under_loss ()));
      Test.make ~name:"e17/real-trace:multi-source"
        (Staged.stage (bench_e17_real_trace ()));
      Test.make ~name:"e18/mega:flooding-round-100k"
        (Staged.stage
           (bench_e18_mega ~n:100_000 ~shards:1 ~max_rounds:mega_rounds ()));
      Test.make ~name:"e18/mega:flooding-round-100k-sharded"
        (Staged.stage
           (bench_e18_mega ~n:100_000 ~shards ~max_rounds:mega_rounds ()));
    ]

(* The e18 entries report time per simulated *round*, not per thunk:
   one thunk runs [mega_rounds] rounds and the OLS estimate is divided
   accordingly, so the committed number is the tentpole's "flooding
   round at n = 10^5" budget line with setup amortized. *)
let per_round_entries =
  [
    "dynspread/e18/mega:flooding-round-100k";
    "dynspread/e18/mega:flooding-round-100k-sharded";
  ]

let normalize_row (name, ns) =
  if List.mem name per_round_entries then (name, ns /. float_of_int mega_rounds)
  else (name, ns)

(* Runs the micro-benchmarks, prints the human table, and returns the
   [(name, ns_per_run)] rows for the JSON summary. *)
let run_bechamel ~shards () =
  Obs.Console.out "=== Part 2: Bechamel micro-benchmarks (time per run) ===";
  Obs.Console.out "";
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (tests ~shards) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | Some [] | None -> Float.nan
        in
        normalize_row (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  print_table
    (Analysis.Table.make
       ~title:
         "simulator throughput (one run of each experiment's core workload)"
       ~columns:[ "benchmark"; "time per run" ]
       ~notes:
         [
           "OLS estimate over monotonic-clock samples; randomized protocol \
            runs, so treat as order-of-magnitude.";
           Printf.sprintf
             "e18 entries are per simulated round (one thunk = %d rounds, \
              setup amortized); the sharded entry ran with --shards %d."
             mega_rounds shards;
         ]
       (List.map
          (fun (name, ns) ->
            let cell =
              if Float.is_nan ns then "n/a"
              else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
              else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
            in
            [ name; cell ])
          rows));
  rows

(* {2 JSON summary + driver} *)

let write_results ~out ~shards ~bench_rows ~metrics =
  let benchmarks =
    List.map
      (fun (name, ns) ->
        Obs.Json.Obj
          [
            ("name", Obs.Json.String name);
            ( "ns_per_run",
              if Float.is_nan ns then Obs.Json.Null else Obs.Json.Float ns );
          ])
      bench_rows
  in
  let experiments =
    match metrics with
    | None -> []
    | Some m ->
        List.filter_map
          (fun name ->
            match Obs.Metrics.summary m name with
            | Some s ->
                Some
                  (Obs.Json.Obj
                     [
                       ("name", Obs.Json.String name);
                       ("seconds", Obs.Json.Float s.Obs.Metrics.sum);
                     ])
            | None -> None)
          (Obs.Metrics.names m)
  in
  let json =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.String "dynspread-bench/v1");
        ("seed", Obs.Json.Int seed);
        ("shards", Obs.Json.Int shards);
        ("benchmarks", Obs.Json.List benchmarks);
        ("experiments", Obs.Json.List experiments);
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Obs.Json.to_channel oc json);
  Obs.Console.out (Printf.sprintf "wrote %s" out)

(* {2 Profile artifacts: E1/E4/E7 under an active profiler} *)

let profiled_experiments =
  [
    ("e1", fun ~jobs ~prof -> ignore (Analysis.Experiments.table1 ~jobs ~prof ~seed ()));
    ("e4", fun ~jobs ~prof -> ignore (Analysis.Experiments.single_source ~jobs ~prof ~seed ()));
    ("e7", fun ~jobs ~prof -> ignore (Analysis.Experiments.rw_scaling ~jobs ~prof ~seed ()));
  ]

let write_profiles ~jobs ~dir =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  List.iter
    (fun (name, run) ->
      let prof = Obs.Span.create () in
      run ~jobs ~prof;
      let path = Filename.concat dir (name ^ ".json") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Obs.Span.write prof oc Obs.Span.Chrome);
      Obs.Console.out
        (Printf.sprintf "wrote %s (%d spans)" path (Obs.Span.span_count prof)))
    profiled_experiments

(* {2 Baseline compare (the CI perf gate)} *)

let compare_against ~out ~baseline_path ~tolerance ~tables_ran ~bechamel_ran =
  match (Analysis.Baseline.load baseline_path, Analysis.Baseline.load out) with
  | Error e, _ | _, Error e ->
      Obs.Console.error ("error: " ^ e);
      exit 2
  | Ok baseline, Ok current ->
      (* The sharded entries measure a specific parallelism; diffing a
         4-shard run against a 1-shard baseline would gate on the shard
         count, not the code.  Report both and refuse on mismatch. *)
      Obs.Console.out
        (Printf.sprintf "shards: %d (baseline %d)"
           current.Analysis.Baseline.shards baseline.Analysis.Baseline.shards);
      if current.Analysis.Baseline.shards <> baseline.Analysis.Baseline.shards
      then begin
        Obs.Console.error
          (Printf.sprintf
             "error: shard counts differ (baseline %d, this run %d); rerun \
              with --shards %d or regenerate the baseline"
             baseline.Analysis.Baseline.shards current.Analysis.Baseline.shards
             baseline.Analysis.Baseline.shards);
        exit 2
      end;
      (* Only gate on the sections that actually ran this invocation:
         --tables-only must not flag every micro-benchmark as missing. *)
      let baseline =
        {
          baseline with
          Analysis.Baseline.benchmarks =
            (if bechamel_ran then baseline.Analysis.Baseline.benchmarks
             else []);
          experiments =
            (if tables_ran then baseline.Analysis.Baseline.experiments
             else []);
        }
      in
      (* Noise band: experiments under 50 ms and micro-benchmarks under
         1 ms/run swing severalfold on a loaded machine; a percentage
         gate on them is pure flakiness.  The interesting regressions
         (E1/E4/E7 sweeps, the heavyweight protocol runs) all sit two
         orders of magnitude above the floor. *)
      let floor = function
        | Analysis.Baseline.Benchmark -> 1e6 (* ns/run *)
        | Analysis.Baseline.Experiment -> 0.05 (* seconds *)
      in
      let c =
        Analysis.Baseline.diff ~floor ~tolerance_pct:tolerance ~baseline
          ~current ()
      in
      List.iter Obs.Console.out (Analysis.Baseline.render c);
      if Analysis.Baseline.regressed c then exit 1

let usage () =
  Obs.Console.lines
    [
      "usage: main.exe [--tables-only | --bechamel-only] [--jobs N] \
       [--shards N] [--out FILE]";
      "                [--compare BASELINE.json] [--tolerance PCT] \
       [--profile-dir DIR]";
      "  --tables-only    only the paper tables (Part 1)";
      "  --bechamel-only  only the micro-benchmarks (Part 2)";
      "  --jobs N         domains for the experiment sweeps (default: \
       recommended domain count); tables are bit-identical for every N";
      "  --shards N       intra-run shard count for the sharded SoA \
       micro-benchmarks (default 4); recorded in the summary, and \
       --compare refuses baselines taken at a different count";
      "  --out FILE       JSON summary path (default BENCH_results.json)";
      "  --compare FILE   diff this run's summary against the baseline \
       summary FILE; exit 1 on regression";
      "  --tolerance PCT  regression threshold for --compare, in percent \
       (default 25)";
      "  --profile-dir D  additionally run E1/E4/E7 with the span profiler \
       on and write D/e1.json, D/e4.json, D/e7.json Chrome traces";
    ]

let () =
  let tables_only = ref false
  and bechamel_only = ref false
  and jobs = ref (Analysis.Sweep.recommended_jobs ())
  and shards = ref 4
  and out = ref "BENCH_results.json"
  and compare_to = ref None
  and tolerance = ref 25.
  and profile_dir = ref None in
  let rec parse = function
    | [] -> ()
    | "--tables-only" :: rest ->
        tables_only := true;
        parse rest
    | "--bechamel-only" :: rest ->
        bechamel_only := true;
        parse rest
    | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            jobs := n;
            parse rest
        | Some _ | None ->
            Obs.Console.error (Printf.sprintf "error: --jobs needs a positive integer, got %S" v);
            usage ();
            exit 2)
    | [ "--jobs" ] ->
        Obs.Console.error "error: --jobs needs a count argument";
        usage ();
        exit 2
    | "--shards" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            shards := n;
            parse rest
        | Some _ | None ->
            Obs.Console.error
              (Printf.sprintf
                 "error: --shards needs a positive integer, got %S" v);
            usage ();
            exit 2)
    | [ "--shards" ] ->
        Obs.Console.error "error: --shards needs a count argument";
        usage ();
        exit 2
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | [ "--out" ] ->
        Obs.Console.error "error: --out needs a file argument";
        usage ();
        exit 2
    | "--compare" :: file :: rest ->
        compare_to := Some file;
        parse rest
    | [ "--compare" ] ->
        Obs.Console.error "error: --compare needs a baseline file argument";
        usage ();
        exit 2
    | "--tolerance" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t when Float.is_finite t && t >= 0. ->
            tolerance := t;
            parse rest
        | Some _ | None ->
            Obs.Console.error
              (Printf.sprintf
                 "error: --tolerance needs a percentage >= 0, got %S" v);
            usage ();
            exit 2)
    | [ "--tolerance" ] ->
        Obs.Console.error "error: --tolerance needs a percentage argument";
        usage ();
        exit 2
    | "--profile-dir" :: dir :: rest ->
        profile_dir := Some dir;
        parse rest
    | [ "--profile-dir" ] ->
        Obs.Console.error "error: --profile-dir needs a directory argument";
        usage ();
        exit 2
    | arg :: _ ->
        Obs.Console.error (Printf.sprintf "error: unknown argument %S" arg);
        usage ();
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !tables_only && !bechamel_only then begin
    Obs.Console.error "error: --tables-only and --bechamel-only are exclusive";
    usage ();
    exit 2
  end;
  let metrics = if !bechamel_only then None else Some (Obs.Metrics.create ()) in
  (match metrics with
  | Some m -> run_tables ~jobs:!jobs ~metrics:m ()
  | None -> ());
  let bench_rows =
    if !tables_only then [] else run_bechamel ~shards:!shards ()
  in
  write_results ~out:!out ~shards:!shards ~bench_rows ~metrics;
  (match !profile_dir with
  | Some dir -> write_profiles ~jobs:!jobs ~dir
  | None -> ());
  match !compare_to with
  | Some baseline_path ->
      compare_against ~out:!out ~baseline_path ~tolerance:!tolerance
        ~tables_ran:(not !bechamel_only) ~bechamel_ran:(not !tables_only)
  | None -> ()
